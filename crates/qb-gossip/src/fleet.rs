//! The frontend fleet and the epidemic exchange protocol.
//!
//! Every frontend owns a private [`QueryCache`], a [`VersionVector`] of the
//! highest shard version it has observed per term, and — since the overlay
//! became churn-aware — its own [`MembershipView`] of the fleet. A gossip
//! round walks the active frontends; each one increments its heartbeat,
//! samples `fanout` partners from the members *it* believes alive (biased
//! toward its own latency zone, escaping cross-zone with a configurable
//! probability) and runs one *exchange* with each:
//!
//! 1. **Digest swap** — one RPC carrying both sides' digests plus a
//!    membership summary (peer, zone, heartbeat triples). In
//!    [`DigestMode::Delta`] a digest holds only the hot-set entries that
//!    changed since the last exchange with that peer, plus a compact
//!    [`ShardFilter`] over the sender's current holdings; anti-entropy
//!    rounds always swap full digests, reconciling fully after partitions
//!    and repairing any fill the compression delayed.
//! 2. **Fills, both directions** — each side pushes the shards it believes
//!    the other lacks (bounded by `max_fills_per_exchange`), as one batched
//!    one-way message. A fill carries the *remaining* lifetime of the
//!    sender's copy; the receiver stores it under `min(remaining, own
//!    adapted TTL)`.
//! 3. **Version guard** — the receiver admits a fill only if its version is
//!    at least the highest version it has observed for that term, and
//!    strictly newer than its cached copy. A stale shard is *never*
//!    accepted over a fresher one, no matter how gossip routes it.
//!
//! **Churn**: frontends [`join`](GossipFleet::join) by bootstrapping their
//! cache through one full anti-entropy exchange with a live neighbour
//! (warming from the fleet instead of the DHT), [`leave`](GossipFleet::leave)
//! gracefully (departure notices) or [`crash`](GossipFleet::crash) (peers
//! detect the silence via heartbeats and evict the member from their sample
//! sets); a crashed frontend can [`rejoin`](GossipFleet::rejoin) with a
//! fresh cache and a bumped SWIM-style **incarnation epoch** (its heartbeat
//! restarts from zero) that supersedes every stale view of it — a
//! long-delayed membership summary from a previous incarnation can never
//! confuse the fleet about the restarted process.
//!
//! **Batch-aware advertisements**: the engine queues a batch window's
//! freshly fetched shard keys on the serving frontend
//! ([`GossipFleet::note_batch_fetches`]); they ride its next digest round
//! ahead of hot-set popularity and lead the fill order, warming the rest
//! of the fleet one round earlier than the epidemic alone would.
//!
//! All traffic goes through [`SimNet`] and is charged to its `NetStats`;
//! partitions and offline peers fail exchanges exactly like any other RPC.

use crate::config::{DigestMode, GossipConfig};
use crate::digest::{apply_delta, delta_entries, needs_fill, Digest, VersionVector};
use crate::filter::ShardFilter;
use crate::membership::MembershipView;
use crate::stats::GossipStats;
use qb_cache::{CacheConfig, QueryCache, RemoteAdmit};
use qb_common::{DetRng, SimDuration, SimInstant};
use qb_dht::DhtNetwork;
use qb_index::ShardEntry;
use qb_segment::{fetch_segment, ImportReport, SegmentRef};
use qb_simnet::SimNet;
use qb_storage::StorageNetwork;
use std::collections::HashMap;

/// Wire overhead charged per shard in a fill batch (frame, version, TTL).
const FILL_ENTRY_OVERHEAD: usize = 12;

/// Bytes of a graceful departure notice.
const DEPARTURE_NOTICE_BYTES: usize = 16;

/// Most rounds one `maybe_run` call fires when catching up after a large
/// simulated-time step.
const MAX_CATCHUP_ROUNDS: usize = 8;

/// Request bytes of a join-time "what is your newest segment?" probe.
const SEGMENT_PROBE_BYTES: usize = 16;

/// Response bytes of a segment probe that found no artifact.
const SEGMENT_PROBE_EMPTY_REPLY_BYTES: usize = 8;

/// Terms a zone-aware anti-entropy coverage check inspects at most — a
/// bound on per-round work, not on safety (uncovered terms simply leave the
/// partner choice to the default sampler).
const MAX_ZONE_AE_MISSING: usize = 32;

/// What kind of exchange is running — decides digest shape (regular
/// exchanges may use delta digests; the other classes always swap full
/// digests) and which fill-byte class the traffic is accounted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExchangeClass {
    /// Periodic hot-set round.
    Regular,
    /// Periodic full-digest reconciliation round.
    AntiEntropy,
    /// A join's elevated-budget warm-up exchange.
    Bootstrap,
}

impl ExchangeClass {
    /// Full-digest exchanges reconcile entire shard tiers.
    fn full(self) -> bool {
        self != ExchangeClass::Regular
    }
}

/// What one frontend knows about the sync state with one partner — the
/// receiver-side reconstruction state of the delta-digest protocol.
#[derive(Debug, Clone, Default)]
struct PeerSync {
    /// `(term -> version)` this frontend believes the partner holds
    /// (accumulated from the partner's advertisements and own fills).
    holdings: HashMap<String, u64>,
    /// `(term -> version)` this frontend last advertised to the partner —
    /// the baseline the next delta digest is computed against.
    advertised: HashMap<String, u64>,
    /// The partner's holdings filter from the last delta exchange (cleared
    /// by full exchanges, whose holdings view is exact). Zone-aware
    /// anti-entropy uses it to confirm an in-zone candidate still covers
    /// the missing shards before redirecting a partner slot to it.
    filter: Option<ShardFilter>,
}

/// One query frontend: a peer in the simulated network, its private cache,
/// its per-term version knowledge and its view of the fleet.
#[derive(Debug)]
pub struct Frontend {
    /// The simulated peer this frontend runs on.
    pub peer: u64,
    /// The latency zone this frontend lives in (`peer % config.zones`,
    /// matching `qb-simnet`'s round-robin zone assignment).
    pub zone: usize,
    /// Highest shard version observed per term (DHT fetches, publish events,
    /// gossip digests and fills).
    pub known: VersionVector,
    /// SWIM-style incarnation epoch: bumped on every restart
    /// ([`GossipFleet::rejoin`]), so liveness evidence compares
    /// `(incarnation, heartbeat)` and a long-delayed summary from a
    /// previous incarnation can never confuse the fleet about the
    /// restarted process.
    incarnation: u64,
    /// Per-incarnation heartbeat counter (a restarted process starts over
    /// from zero; the bumped incarnation is what supersedes stale views).
    heartbeat: u64,
    /// True once the frontend left or crashed; departed slots keep their
    /// index (engine routing stays stable) but take no part in gossip.
    departed: bool,
    /// This frontend's own view of fleet membership.
    view: MembershipView,
    /// Per-partner delta-digest sync state.
    sync: HashMap<u64, PeerSync>,
    /// Rotating cursor of the bounded membership summaries.
    summary_cursor: usize,
    /// Batch-aware gossip: `(term, version)` keys a batch window freshly
    /// fetched on this frontend, queued to ride the next digest round as
    /// priority advertisements and priority fills.
    pending_adverts: Vec<(String, u64)>,
    /// The holdings filter of the last delta exchange, cached behind the
    /// shard tier's `(generation, instant)`: rounds where nothing changed
    /// reuse it instead of rebuilding per exchange.
    filter_cache: Option<(u64, SimInstant, ShardFilter)>,
    /// The newest published segment artifact this frontend knows of,
    /// adopted from publish notifications and digest piggybacks; joiners
    /// probe for it to bootstrap from the artifact instead of shard fills.
    segment_advert: Option<SegmentRef>,
    /// The load EWMA this frontend advertises on its heartbeats: folded
    /// from `load_recent` on every gossip round, so it decays once serving
    /// stops and spikes one round after it starts.
    load: u64,
    /// Queries served since the last heartbeat tick (the EWMA's raw input).
    load_recent: u64,
    /// Queries the open-loop dispatcher routed here that are still
    /// *queued* — admitted but not yet handed to a pipeline window. The
    /// router's local gauge of its own decisions (C3-style); without it,
    /// every arrival inside one heartbeat interval sees the same
    /// advertised-load snapshot and two-choices herds the whole burst
    /// onto one frontend. Deliberately excludes the dispatched in-flight
    /// window: an empty-queue frontend mid-window should keep collecting
    /// arrivals so they batch into its next window and share fetches.
    routed_outstanding: u64,
    /// Queries the open-loop dispatcher handed to this frontend's
    /// pipeline windows since the last heartbeat fold (reset at the
    /// fold). The cumulative half of the routing signal: it equalizes
    /// *how much* work each frontend took this interval, not just what
    /// is queued right now, so a fast-draining frontend does not soak up
    /// every arrival between heartbeats.
    routed_recent: u64,
    /// The private query-serving cache. `None` only while the engine's
    /// search path has it checked out.
    cache: Option<QueryCache>,
}

impl Frontend {
    fn new(peer: u64, zone: usize, cache_config: CacheConfig) -> Frontend {
        Frontend {
            peer,
            zone,
            known: VersionVector::new(),
            incarnation: 0,
            heartbeat: 0,
            departed: false,
            view: MembershipView::new(),
            sync: HashMap::new(),
            summary_cursor: 0,
            pending_adverts: Vec::new(),
            filter_cache: None,
            segment_advert: None,
            load: 0,
            load_recent: 0,
            routed_outstanding: 0,
            routed_recent: 0,
            cache: Some(QueryCache::new(cache_config)),
        }
    }

    /// The membership summary piggybacked on one exchange: the full roster
    /// for anti-entropy/bootstrap, a bounded rotating window otherwise.
    fn membership_summary(&mut self, full: bool, budget: usize) -> crate::MembershipSummary {
        if full {
            return self.view.summary();
        }
        let s = self
            .view
            .summary_window(self.summary_cursor, budget, self.peer);
        self.summary_cursor = self.summary_cursor.wrapping_add(budget.max(1));
        s
    }

    /// Borrow the cache (panics while checked out by the search path).
    pub fn cache(&self) -> &QueryCache {
        self.cache.as_ref().expect("frontend cache checked out")
    }

    /// Mutably borrow the cache (panics while checked out).
    pub fn cache_mut(&mut self) -> &mut QueryCache {
        self.cache.as_mut().expect("frontend cache checked out")
    }

    /// Is the frontend part of the fleet (not departed/crashed)?
    pub fn is_active(&self) -> bool {
        !self.departed
    }

    /// Current heartbeat counter (within the current incarnation).
    pub fn heartbeat(&self) -> u64 {
        self.heartbeat
    }

    /// Current incarnation epoch (bumped on every restart).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Batch-window shard keys queued for the next digest round.
    pub fn pending_adverts(&self) -> &[(String, u64)] {
        &self.pending_adverts
    }

    /// The newest segment artifact this frontend currently advertises.
    pub fn segment_advert(&self) -> Option<SegmentRef> {
        self.segment_advert
    }

    /// The pending batch adverts re-resolved against the current cache:
    /// entries evicted since the window are dropped, and a key republished
    /// in between advertises (and fills) the *cached* version — digest and
    /// priority-fill decisions must agree on one version, or a partner
    /// already holding the stale queued version would suppress the very
    /// fill the advert exists to force.
    fn resolved_adverts(&self) -> Vec<(String, u64)> {
        self.pending_adverts
            .iter()
            .filter_map(|(term, _)| {
                self.cache()
                    .cached_shard_version(term)
                    .map(|version| (term.clone(), version))
            })
            .collect()
    }

    /// The holdings filter for a delta exchange over `holdings` at `now`,
    /// served from the per-frontend cache while the shard tier's
    /// generation (and the instant, which decides TTL aliveness) are
    /// unchanged — a steady round builds the filter once instead of once
    /// per exchange.
    fn holdings_filter(
        &mut self,
        holdings: &[(String, u64)],
        bits_per_entry: usize,
        now: SimInstant,
        stats: &mut GossipStats,
    ) -> ShardFilter {
        let generation = self.cache().shard_generation();
        if let Some((cached_gen, cached_at, filter)) = &self.filter_cache {
            if *cached_gen == generation && *cached_at == now {
                stats.filter_reuses += 1;
                return filter.clone();
            }
        }
        stats.filter_builds += 1;
        let filter = ShardFilter::build(holdings, bits_per_entry);
        self.filter_cache = Some((generation, now, filter.clone()));
        filter
    }

    /// This frontend's view of fleet membership.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    fn sync_entry(&mut self, peer: u64) -> &mut PeerSync {
        self.sync.entry(peer).or_default()
    }
}

/// The gossip overlay over a fleet of frontends.
#[derive(Debug)]
pub struct GossipFleet {
    config: GossipConfig,
    cache_config: CacheConfig,
    frontends: Vec<Frontend>,
    index_by_peer: HashMap<u64, usize>,
    rng: DetRng,
    next_round_at: SimInstant,
    next_anti_entropy_at: SimInstant,
    stats: GossipStats,
}

impl GossipFleet {
    /// Build a fleet of `config.num_frontends` frontends on peers
    /// `0..num_frontends` (zone `peer % config.zones`), each with a private
    /// cache built from `cache_config`. Every initial member knows the full
    /// starting roster; membership changes after that flow through gossip.
    /// `seed` is mixed with the gossip seed so two engines differing only
    /// in their master seed sample different partners.
    pub fn new(config: GossipConfig, cache_config: &CacheConfig, seed: u64) -> GossipFleet {
        let zones = config.zones.max(1);
        let mut frontends: Vec<Frontend> = (0..config.num_frontends)
            .map(|i| Frontend::new(i as u64, i % zones, cache_config.clone()))
            .collect();
        let roster: Vec<(u64, usize)> = frontends.iter().map(|f| (f.peer, f.zone)).collect();
        for f in frontends.iter_mut() {
            for &(peer, zone) in &roster {
                f.view.admit(peer, zone, 0, 0, SimInstant::ZERO);
            }
        }
        let index_by_peer = frontends
            .iter()
            .enumerate()
            .map(|(i, f)| (f.peer, i))
            .collect();
        let rng = DetRng::new(seed ^ config.seed.rotate_left(17));
        GossipFleet {
            next_round_at: SimInstant::ZERO + config.round_interval,
            next_anti_entropy_at: SimInstant::ZERO + config.anti_entropy_interval,
            cache_config: cache_config.clone(),
            config,
            frontends,
            index_by_peer,
            rng,
            stats: GossipStats::default(),
        }
    }

    /// Number of frontend slots (departed slots included; indexes are
    /// stable across churn).
    pub fn len(&self) -> usize {
        self.frontends.len()
    }

    /// True when the fleet has no frontends.
    pub fn is_empty(&self) -> bool {
        self.frontends.is_empty()
    }

    /// Number of active (not departed) frontends.
    pub fn active_count(&self) -> usize {
        self.frontends.iter().filter(|f| f.is_active()).count()
    }

    /// Is frontend `i` active (joined and neither left nor crashed)?
    pub fn is_active(&self, i: usize) -> bool {
        self.frontends.get(i).is_some_and(|f| f.is_active())
    }

    /// The latency zone of frontend `i`.
    pub fn zone_of(&self, i: usize) -> usize {
        self.frontends[i].zone
    }

    /// The configuration the fleet runs.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Cumulative gossip counters.
    pub fn stats(&self) -> &GossipStats {
        &self.stats
    }

    /// Borrow one frontend.
    pub fn frontend(&self, i: usize) -> &Frontend {
        &self.frontends[i]
    }

    /// The simulated peer frontend `i` runs on.
    pub fn frontend_peer(&self, i: usize) -> u64 {
        self.frontends[i].peer
    }

    /// Mutably borrow one frontend's cache.
    pub fn cache_mut(&mut self, i: usize) -> &mut QueryCache {
        self.frontends[i].cache_mut()
    }

    /// Check frontend `i`'s cache out of the fleet (the engine's search
    /// path works on it while also borrowing the rest of the engine).
    pub fn take_cache(&mut self, i: usize) -> Option<QueryCache> {
        self.frontends[i].cache.take()
    }

    /// Return a checked-out cache.
    pub fn restore_cache(&mut self, i: usize, cache: Option<QueryCache>) {
        self.frontends[i].cache = cache;
    }

    /// Record that frontend `i` observed `version` of `term` (e.g. through
    /// its own DHT fetch).
    pub fn observe(&mut self, i: usize, term: &str, version: u64) {
        self.frontends[i].known.observe(term, version);
    }

    /// Record that frontend `i` admitted one query. Feeds the load EWMA
    /// the frontend advertises on its next heartbeat — the signal the
    /// power-of-two-choices router breaks HRW ties with.
    pub fn record_served(&mut self, i: usize) {
        if let Some(f) = self.frontends.get_mut(i) {
            f.load_recent += 1;
        }
    }

    /// Record that the open-loop dispatcher routed one arrival to frontend
    /// `i`: the query sits in its ingress queue until
    /// [`GossipFleet::record_finished`] retires it at dispatch.
    pub fn record_routed(&mut self, i: usize) {
        if let Some(f) = self.frontends.get_mut(i) {
            f.routed_outstanding += 1;
        }
    }

    /// Retire `n` queued queries at frontend `i` — a dispatch just moved
    /// them out of the ingress queue into a pipeline batch. The batch
    /// still counts toward the interval's cumulative ledger until the
    /// next heartbeat fold.
    pub fn record_finished(&mut self, i: usize, n: u64) {
        if let Some(f) = self.frontends.get_mut(i) {
            f.routed_outstanding = f.routed_outstanding.saturating_sub(n);
            f.routed_recent += n;
        }
    }

    /// The load signal frontend `i` currently advertises: the EWMA it
    /// folded at its last heartbeat and gossips in its membership
    /// summaries. 0 when the frontend has never heartbeaten — an unknown
    /// member looks idle, the optimistic default two-choices wants.
    /// Deliberately *not* the frontend's own instantaneous counter:
    /// routing decisions see load at heartbeat granularity, like a real
    /// fleet. Every slot is read at the same one-fold staleness — an
    /// earlier version read a single anchor frontend's gossip-fed view,
    /// which saw the anchor's own load one propagation round fresher than
    /// everyone else's and systematically diverted traffic off it
    /// whenever fleet load was rising.
    pub fn advertised_load(&self, i: usize) -> u64 {
        let Some(target) = self.frontends.get(i) else {
            return 0;
        };
        target.view.load_of(target.peer)
    }

    /// The load picture the two-choices router compares: the heartbeat
    /// EWMA the frontend advertises plus the dispatcher's own gauge of
    /// queries it routed there that are still queued. The gauge is local
    /// information a front door legitimately has about its *own*
    /// decisions — it is never gossiped — and it is what stops a burst
    /// arriving inside one heartbeat interval from herding onto whichever
    /// frontend the shared stale snapshot says is idlest. Counting only
    /// queued (not dispatched in-flight) work keeps arrivals coalescing
    /// behind a mid-window frontend's next batch instead of scattering
    /// into single-query windows that cannot share fetches.
    ///
    /// `routed_recent` — the same router's cumulative count for the
    /// current gossip interval — rides along so the signal also
    /// equalizes *total* work routed per interval: without it a
    /// fast-draining frontend (empty queue, short windows) soaks up
    /// arrivals indefinitely and the post-crash respread skews toward
    /// whoever serves cheapest. Both gauges are fed only by the
    /// open-loop dispatcher, so closed-loop `search_*` calls never
    /// perturb where a hashed route resolves.
    pub fn routing_load(&self, i: usize) -> u64 {
        let Some(f) = self.frontends.get(i) else {
            return 0;
        };
        self.advertised_load(i) + f.routed_recent + f.routed_outstanding
    }

    /// A page version touching `term` was (re)indexed at `version` by a bee
    /// on `writer_peer`. Every active frontend that can currently observe
    /// the publish (same partition, online) invalidates its cached entries
    /// and records the new version; partitioned frontends miss the event
    /// and catch up through read-time version checks and anti-entropy after
    /// the partition heals.
    pub fn observe_publish(
        &mut self,
        net: &SimNet,
        writer_peer: u64,
        term: &str,
        version: u64,
        now: SimInstant,
    ) {
        for f in &mut self.frontends {
            if f.departed || !net.can_reach(writer_peer, f.peer) {
                continue;
            }
            f.known.observe(term, version);
            if let Some(cache) = f.cache.as_mut() {
                cache.invalidate_term(term, now);
            }
        }
    }

    /// Serialize frontend `i`'s hottest `max` shards for warm-start
    /// persistence.
    pub fn export_hot_set(&self, i: usize, max: usize, now: SimInstant) -> Vec<u8> {
        self.frontends[i].cache().export_hot_set(max, now)
    }

    /// Pre-fill frontend `i`'s shard tier from a warm-start snapshot,
    /// recording the imported versions in its version vector. Returns the
    /// number of shards admitted.
    pub fn import_hot_set(
        &mut self,
        i: usize,
        data: &[u8],
        now: SimInstant,
    ) -> qb_common::QbResult<usize> {
        let admitted = self.frontends[i].cache_mut().import_hot_set(data, now)?;
        let digest = self.frontends[i].cache().shard_digest(usize::MAX, now);
        for (term, version) in digest {
            self.frontends[i].known.observe(&term, version);
        }
        Ok(admitted)
    }

    // ----- churn -------------------------------------------------------------------

    /// A new frontend joins the fleet on `peer` (which must already exist in
    /// the simulated network and not host another frontend). Its zone is
    /// `peer % config.zones`, matching the network's assignment. The joiner
    /// bootstraps by one full anti-entropy exchange with a live neighbour
    /// (same zone preferred) — the operator hands the new process a seed
    /// address, everything else flows through gossip — warming its cache
    /// from the fleet instead of the DHT. Returns the new frontend index;
    /// a peer that already hosts a frontend (departed slots included —
    /// those restart via [`GossipFleet::rejoin`]) is rejected.
    pub fn join(
        &mut self,
        net: &mut SimNet,
        peer: u64,
        now: SimInstant,
    ) -> qb_common::QbResult<usize> {
        if self.index_by_peer.contains_key(&peer) {
            return Err(qb_common::QbError::Config(format!(
                "peer {peer} already hosts a frontend"
            )));
        }
        let zone = (peer as usize) % self.config.zones.max(1);
        let idx = self.frontends.len();
        let mut f = Frontend::new(peer, zone, self.cache_config.clone());
        f.view.admit(peer, zone, 0, 0, now);
        self.frontends.push(f);
        self.index_by_peer.insert(peer, idx);
        self.stats.joins += 1;
        self.bootstrap(net, idx, now);
        Ok(idx)
    }

    /// Frontend `i` leaves gracefully: it notifies up to `fanout` partners
    /// (which tombstone it immediately; everyone else evicts it via the
    /// liveness timeout) and goes offline. The notice carries the leaver's
    /// final heartbeat, so no third-party summary — all of which saw at
    /// most that heartbeat — can resurrect the departed member in a
    /// notified view; only an actual rejoin (which bumps the heartbeat)
    /// revives it.
    pub fn leave(&mut self, net: &mut SimNet, i: usize) {
        if self.frontends[i].departed {
            return;
        }
        let peer = self.frontends[i].peer;
        let zone = self.frontends[i].zone;
        let final_incarnation = self.frontends[i].incarnation;
        let final_heartbeat = self.frontends[i].heartbeat;
        let partners = self.frontends[i].view.sample_partners(
            &mut self.rng,
            peer,
            zone,
            self.config.fanout,
            self.config.cross_zone_probability,
            false,
        );
        for p in partners {
            if net.send(peer, p, DEPARTURE_NOTICE_BYTES).is_ok() {
                self.stats.membership_bytes += DEPARTURE_NOTICE_BYTES as u64;
                if let Some(&j) = self.index_by_peer.get(&p) {
                    self.frontends[j]
                        .view
                        .mark_departed(peer, final_incarnation, final_heartbeat);
                }
            }
        }
        self.frontends[i].departed = true;
        net.set_online(peer, false);
        self.stats.leaves += 1;
    }

    /// Frontend `i` crashes: no notice is sent; the rest of the fleet
    /// detects the silence through heartbeats and failed exchanges and
    /// evicts it from their sample sets.
    pub fn crash(&mut self, net: &mut SimNet, i: usize) {
        if self.frontends[i].departed {
            return;
        }
        net.set_online(self.frontends[i].peer, false);
        self.frontends[i].departed = true;
        self.stats.crashes += 1;
    }

    /// A departed frontend restarts on its old peer: fresh cache, fresh
    /// version vector, bumped **incarnation** with the heartbeat starting
    /// over from zero (a real restarted process remembers no counter; the
    /// incarnation epoch is what makes its gossip supersede every stale
    /// view of it, SWIM-style), and a bootstrap anti-entropy exchange with
    /// a live neighbour to warm up from the fleet instead of the DHT.
    pub fn rejoin(&mut self, net: &mut SimNet, i: usize, now: SimInstant) {
        if !self.frontends[i].departed {
            return;
        }
        let f = &mut self.frontends[i];
        net.set_online(f.peer, true);
        f.departed = false;
        f.cache = Some(QueryCache::new(self.cache_config.clone()));
        f.known = VersionVector::new();
        f.sync.clear();
        f.pending_adverts.clear();
        f.filter_cache = None;
        f.segment_advert = None;
        f.load = 0;
        f.load_recent = 0;
        f.routed_outstanding = 0;
        f.routed_recent = 0;
        f.incarnation += 1;
        f.heartbeat = 0;
        let (peer, zone, inc, hb) = (f.peer, f.zone, f.incarnation, f.heartbeat);
        f.view = MembershipView::new();
        f.view.admit(peer, zone, inc, hb, now);
        self.stats.joins += 1;
        self.bootstrap(net, i, now);
    }

    /// One full anti-entropy exchange between a (re)joining frontend and a
    /// live neighbour (same zone preferred), with the elevated bootstrap
    /// fill budget. A failed exchange (races with churn, partitions) falls
    /// back to the next candidate neighbour; a fleet with no reachable
    /// neighbour joins cold.
    fn bootstrap(&mut self, net: &mut SimNet, idx: usize, now: SimInstant) {
        for j in self.bootstrap_candidates(net, idx) {
            let (a, b) = pair_mut(&mut self.frontends, idx, j);
            if exchange(
                &self.config,
                a,
                b,
                net,
                now,
                ExchangeClass::Bootstrap,
                self.config.bootstrap_fill_budget(),
                &mut self.stats,
            ) {
                return;
            }
        }
    }

    /// The live candidate neighbours of frontend `idx`, same zone first,
    /// both groups shuffled — the order (re)joins and segment probes walk.
    fn bootstrap_candidates(&mut self, net: &SimNet, idx: usize) -> Vec<usize> {
        let zone = self.frontends[idx].zone;
        let mut same: Vec<usize> = Vec::new();
        let mut cross: Vec<usize> = Vec::new();
        for (j, f) in self.frontends.iter().enumerate() {
            if j == idx || f.departed || !net.is_online(f.peer) {
                continue;
            }
            if f.zone == zone {
                same.push(j);
            } else {
                cross.push(j);
            }
        }
        self.rng.shuffle(&mut same);
        self.rng.shuffle(&mut cross);
        same.into_iter().chain(cross).collect()
    }

    // ----- rounds ------------------------------------------------------------------

    /// Run every gossip round that became due by `now` (a large time step
    /// fires the backlog, keeping the configured pacing relative to
    /// simulated time). Catch-up is capped: epidemic convergence is
    /// logarithmic in rounds, so past `MAX_CATCHUP_ROUNDS` (8) back-to-back
    /// rounds at one instant add nothing and the remaining backlog is
    /// dropped. Returns true when at least one round ran.
    pub fn maybe_run(&mut self, net: &mut SimNet, now: SimInstant) -> bool {
        if !self.config.enabled || self.active_count() < 2 {
            return false;
        }
        let mut fired = 0usize;
        while now >= self.next_round_at && fired < MAX_CATCHUP_ROUNDS {
            let anti_entropy = now >= self.next_anti_entropy_at;
            self.run_round(net, now, anti_entropy);
            if anti_entropy {
                self.next_anti_entropy_at = now + self.config.anti_entropy_interval;
            }
            self.next_round_at += self.config.round_interval;
            fired += 1;
        }
        if now >= self.next_round_at {
            // Backlog beyond the cap is dropped, not replayed later.
            self.next_round_at = now + self.config.round_interval;
        }
        fired > 0
    }

    /// Run one gossip round unconditionally (tests and experiments).
    /// `anti_entropy` swaps full digests instead of (possibly delta) hot
    /// sets and may sample members currently believed dead — the safety net
    /// that re-establishes contact after partitions heal.
    pub fn run_round(&mut self, net: &mut SimNet, now: SimInstant, anti_entropy: bool) {
        if anti_entropy {
            self.stats.anti_entropy_rounds += 1;
        } else {
            self.stats.rounds += 1;
        }
        let round_start = net.now();
        let round_span = net.tracer().open_with("gossip.round", round_start, || {
            if anti_entropy {
                "anti-entropy"
            } else {
                "regular"
            }
            .to_string()
        });
        let n = self.frontends.len();
        for i in 0..n {
            if self.frontends[i].departed || !net.is_online(self.frontends[i].peer) {
                continue;
            }
            // Heartbeat tick; the frontend is the authority on itself.
            // Fold the queries served since the last tick into the load
            // EWMA (half old, plus the new sample) so the advertised
            // signal tracks serving rate but survives one idle round.
            let f = &mut self.frontends[i];
            f.heartbeat += 1;
            f.load = f.load / 2 + f.load_recent;
            f.load_recent = 0;
            f.routed_recent = 0;
            let (peer, zone, inc, hb, load) = (f.peer, f.zone, f.incarnation, f.heartbeat, f.load);
            f.view.admit(peer, zone, inc, hb, now);
            f.view.note_load(peer, load);
            // Zone-biased sampling from the members *this* frontend
            // believes alive (anti-entropy may probe dead ones).
            let mut partners = self.frontends[i].view.sample_partners(
                &mut self.rng,
                peer,
                zone,
                self.config.fanout,
                self.config.cross_zone_probability,
                anti_entropy,
            );
            // Zone-aware anti-entropy: when an in-zone live member's
            // advertised holdings confirm it covers this frontend's missing
            // shards, redirect one partner slot to it — the reconciling
            // bulk moves over the cheap links. The other sampled partners
            // (cross-zone escapes, dead probes) are untouched, and with no
            // covering candidate the sample is exactly the default one.
            if anti_entropy && self.config.zone_aware_anti_entropy {
                if let Some(p) = self.zone_covering_partner(net, i) {
                    partners.retain(|&x| x != p);
                    partners.insert(0, p);
                    partners.truncate(self.config.fanout.max(1));
                }
            }
            for p in partners {
                let Some(&j) = self.index_by_peer.get(&p) else {
                    continue;
                };
                if j == i {
                    continue;
                }
                // Regular rounds respect the zone-aware fill budgets;
                // anti-entropy keeps the flat budget (it is the safety
                // net and must reconcile regardless of link cost).
                let (class, fill_budget) = if anti_entropy {
                    (
                        ExchangeClass::AntiEntropy,
                        self.config.max_fills_per_exchange,
                    )
                } else {
                    (
                        ExchangeClass::Regular,
                        self.config
                            .regular_fill_budget(zone == self.frontends[j].zone),
                    )
                };
                let (a, b) = pair_mut(&mut self.frontends, i, j);
                exchange(
                    &self.config,
                    a,
                    b,
                    net,
                    now,
                    class,
                    fill_budget,
                    &mut self.stats,
                );
            }
            // Evict members that stayed silent past the liveness timeout.
            let evicted = self.frontends[i]
                .view
                .evict_silent(now, self.config.liveness_timeout);
            self.stats.evictions += evicted as u64;
        }
        // Batch-aware advertisements ride exactly one round: every active
        // frontend had its chance to push them, and the receivers now
        // advertise (and relay) the shards as their own holdings.
        for f in &mut self.frontends {
            if !f.departed {
                f.pending_adverts.clear();
            }
        }
        let end = net.now();
        net.tracer().close(round_span, end);
    }

    /// Queue a batch window's freshly fetched `(term, version)` keys as
    /// priority advertisements of frontend `frontend`: they ride the next
    /// digest round (and lead its fill order) even when hot-set popularity
    /// alone would not have promoted them yet, so the rest of the fleet
    /// warms one round earlier. No-op while gossip or
    /// [`GossipConfig::batch_advertise`] is off.
    pub fn note_batch_fetches(&mut self, frontend: usize, terms: &[(String, u64)]) {
        const MAX_PENDING: usize = 256;
        if !self.config.enabled || !self.config.batch_advertise {
            return;
        }
        let f = &mut self.frontends[frontend];
        if f.departed {
            return;
        }
        for (term, version) in terms {
            if f.pending_adverts.len() >= MAX_PENDING {
                break;
            }
            if !f.pending_adverts.iter().any(|(t, _)| t == term) {
                f.pending_adverts.push((term.clone(), *version));
            }
        }
    }

    /// The in-zone live member frontend `i`'s own sync state confirms
    /// covers the most of its missing shards (known version > cached
    /// version): exact advertised holdings first, the partner's last
    /// holdings filter as the probabilistic fallback. Only local knowledge
    /// is consulted — the check costs no traffic. Returns the
    /// best-covering peer (ties broken by fleet order, so the choice is
    /// deterministic), or `None` when nothing is missing or no in-zone
    /// candidate confirms coverage of even one missing shard.
    fn zone_covering_partner(&self, net: &SimNet, i: usize) -> Option<u64> {
        let f = &self.frontends[i];
        let cache = f.cache.as_ref()?;
        let mut missing: Vec<(&str, u64)> = Vec::new();
        for (term, version) in f.known.iter() {
            if missing.len() >= MAX_ZONE_AE_MISSING {
                break;
            }
            if cache.cached_shard_version(term).is_none_or(|c| c < version) {
                missing.push((term, version));
            }
        }
        if missing.is_empty() {
            return None;
        }
        let mut best: Option<(usize, u64)> = None; // (covered, peer)
        for (j, cand) in self.frontends.iter().enumerate() {
            if j == i || cand.departed || cand.zone != f.zone || !net.is_online(cand.peer) {
                continue;
            }
            let Some(sync) = f.sync.get(&cand.peer) else {
                continue;
            };
            let covered = missing
                .iter()
                .filter(|(term, version)| {
                    sync.holdings.get(*term).copied().unwrap_or(0) >= *version
                        || sync
                            .filter
                            .as_ref()
                            .is_some_and(|flt| flt.contains(term, *version))
                })
                .count();
            if covered > 0 && best.is_none_or(|(c, _)| covered > c) {
                best = Some((covered, cand.peer));
            }
        }
        best.map(|(_, peer)| peer)
    }

    // ----- segment artifacts -------------------------------------------------------

    /// The writer published a segment artifact: every active frontend that
    /// can currently observe the publish (same partition, online) adopts
    /// the pointer if it is newer than what it advertises. Mirrors
    /// [`GossipFleet::observe_publish`]'s free notification convention —
    /// the artifact itself was paid for by [`qb_segment::publish_segment`],
    /// and partitioned frontends pick the pointer up later from digest
    /// piggybacks.
    pub fn note_segment_published(&mut self, net: &SimNet, writer_peer: u64, sref: SegmentRef) {
        for f in &mut self.frontends {
            if f.departed || !net.can_reach(writer_peer, f.peer) {
                continue;
            }
            if f.segment_advert
                .is_none_or(|cur| cur.generation < sref.generation)
            {
                f.segment_advert = Some(sref);
            }
        }
    }

    /// The newest segment pointer any active frontend advertises.
    pub fn latest_segment_advert(&self) -> Option<SegmentRef> {
        self.frontends
            .iter()
            .filter(|f| f.is_active())
            .filter_map(|f| f.segment_advert)
            .max_by_key(|s| s.generation)
    }

    /// Like [`GossipFleet::join`], but the joiner first tries to bootstrap
    /// from the fleet's newest published segment artifact: it probes live
    /// neighbours (same zone preferred) for their segment pointer (each
    /// probe a charged RPC), fetches the artifact through the
    /// content-addressed storage/DHT path (all bytes charged to
    /// `NetStats`), imports it through the cache's version guard — a stale
    /// artifact can never clobber fresher knowledge — and finishes with
    /// **one** flat-budget full exchange with the advertising neighbour to
    /// delta-catch-up on everything published after the artifact. When no
    /// neighbour advertises an artifact or the fetch fails, the join falls
    /// back to the classic gossip-only bootstrap.
    pub fn join_with_segment(
        &mut self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        storage: &mut StorageNetwork,
        peer: u64,
        now: SimInstant,
    ) -> qb_common::QbResult<(usize, SegmentBootstrapReport)> {
        if self.index_by_peer.contains_key(&peer) {
            return Err(qb_common::QbError::Config(format!(
                "peer {peer} already hosts a frontend"
            )));
        }
        let zone = (peer as usize) % self.config.zones.max(1);
        let idx = self.frontends.len();
        let mut f = Frontend::new(peer, zone, self.cache_config.clone());
        f.view.admit(peer, zone, 0, 0, now);
        self.frontends.push(f);
        self.index_by_peer.insert(peer, idx);
        self.stats.joins += 1;

        let mut report = SegmentBootstrapReport::default();
        let mut seed: Option<(usize, SegmentRef)> = None;
        for j in self.bootstrap_candidates(net, idx) {
            let cand_peer = self.frontends[j].peer;
            let advert = self.frontends[j].segment_advert;
            let reply_bytes =
                advert.map_or(SEGMENT_PROBE_EMPTY_REPLY_BYTES, |s| s.wire_bytes() as usize);
            report.advert_probes += 1;
            if net
                .rpc(peer, cand_peer, SEGMENT_PROBE_BYTES, reply_bytes)
                .is_err()
            {
                continue;
            }
            self.stats.segment_advert_bytes += (SEGMENT_PROBE_BYTES + reply_bytes) as u64;
            if let Some(sref) = advert {
                seed = Some((j, sref));
                break;
            }
        }
        if let Some((j, sref)) = seed {
            match fetch_segment(net, dht, storage, peer, sref.generation) {
                Ok((segment, fref, io)) => {
                    report.used_segment = true;
                    report.generation = fref.generation;
                    report.fetch_bytes = io.bytes;
                    report.fetch_messages = io.messages;
                    {
                        let fr = &mut self.frontends[idx];
                        let (cache_slot, known) = (&mut fr.cache, &fr.known);
                        let cache = cache_slot.as_mut().expect("fresh frontend owns its cache");
                        report.imported = segment.import_into(cache, |t| known.get(t), now);
                    }
                    let fr = &mut self.frontends[idx];
                    for shard in segment.shards() {
                        fr.known.observe(&shard.term, shard.version);
                    }
                    fr.segment_advert = Some(fref);
                    // Delta catch-up: one full exchange at the *flat*
                    // budget — the artifact carried the bulk; only what
                    // was published after it still moves as fills.
                    let (a, b) = pair_mut(&mut self.frontends, idx, j);
                    exchange(
                        &self.config,
                        a,
                        b,
                        net,
                        now,
                        ExchangeClass::Bootstrap,
                        self.config.bootstrap_fill_budget(),
                        &mut self.stats,
                    );
                    return Ok((idx, report));
                }
                Err(_) => {
                    // Pointer resolved but the artifact was unreachable —
                    // fall through to the gossip-only warm-up.
                }
            }
        }
        self.bootstrap(net, idx, now);
        Ok((idx, report))
    }
}

/// What a segment-assisted join actually did, for experiment attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentBootstrapReport {
    /// True when the joiner warmed from a fetched artifact (false = fell
    /// back to the gossip-only bootstrap).
    pub used_segment: bool,
    /// Generation of the imported artifact (0 when none).
    pub generation: u64,
    /// Neighbours probed for a segment pointer.
    pub advert_probes: u64,
    /// Network bytes the artifact fetch reported (pointer + blocks).
    pub fetch_bytes: u64,
    /// RPC attempts the artifact fetch reported.
    pub fetch_messages: u64,
    /// Version-guard outcomes of the import.
    pub imported: ImportReport,
}

/// Disjoint mutable borrows of two fleet slots.
fn pair_mut(frontends: &mut [Frontend], i: usize, j: usize) -> (&mut Frontend, &mut Frontend) {
    debug_assert_ne!(i, j);
    if i < j {
        let (left, right) = frontends.split_at_mut(j);
        (&mut left[i], &mut right[0])
    } else {
        let (left, right) = frontends.split_at_mut(i);
        (&mut right[0], &mut left[j])
    }
}

/// One digest/fill exchange between two frontends. Returns true when the
/// digest swap succeeded.
#[allow(clippy::too_many_arguments)]
fn exchange(
    config: &GossipConfig,
    a: &mut Frontend,
    b: &mut Frontend,
    net: &mut SimNet,
    now: SimInstant,
    class: ExchangeClass,
    fill_budget: usize,
    stats: &mut GossipStats,
) -> bool {
    let full = class.full();
    // Digests are rebuilt per exchange on purpose: a frontend warmed
    // earlier in this round advertises (and relays) its fresh shards in the
    // same round, giving multi-hop propagation per round instead of one.
    // The full tier is only extracted where the protocol needs it (full
    // digests, or the delta mode's holdings filter); plain full-mode
    // rounds stay bounded by the hot-set size.
    let delta_mode = !full && config.digest_mode == DigestMode::Delta;
    let (a_peer, b_peer) = (a.peer, b.peer);
    let exchange_start = net.now();
    let exchange_span = net
        .tracer()
        .open_with("gossip.exchange", exchange_start, || {
            format!("{a_peer}<->{b_peer}")
        });
    let hot_of = |f: &Frontend| -> Vec<(String, u64)> {
        let max = if full || delta_mode {
            usize::MAX
        } else {
            config.hot_set_size
        };
        f.cache().shard_digest(max, now)
    };
    // In delta mode `hot_*` temporarily holds the whole tier; the filter is
    // built over it (cached per frontend behind the shard tier's
    // generation) before it is truncated to the advertised hot set.
    let (mut hot_a, mut hot_b) = (hot_of(a), hot_of(b));
    let (digest_a, filter_a) =
        build_digest(config, a, b.peer, &mut hot_a, delta_mode, full, now, stats);
    let (digest_b, filter_b) =
        build_digest(config, b, a.peer, &mut hot_b, delta_mode, full, now, stats);
    let memb_a = a.membership_summary(full, config.membership_summary_budget);
    let memb_b = b.membership_summary(full, config.membership_summary_budget);
    let filter_bytes = |f: &Option<ShardFilter>| f.as_ref().map_or(0, |f| f.wire_bytes());
    // Segment pointers piggyback on every digest swap (both directions),
    // so the newest artifact's pointer spreads epidemically like any other
    // metadata — and its bytes are charged like any other metadata.
    let seg_bytes_a = a.segment_advert.map_or(0, |s| s.wire_bytes() as usize);
    let seg_bytes_b = b.segment_advert.map_or(0, |s| s.wire_bytes() as usize);
    let digest_bytes_a = digest_a.wire_bytes() + filter_bytes(&filter_a) + seg_bytes_a;
    let digest_bytes_b = digest_b.wire_bytes() + filter_bytes(&filter_b) + seg_bytes_b;
    // The digest swap is one request/response RPC; a partitioned or offline
    // partner fails it here, no state moves, and the initiator records the
    // failure against the partner's liveness.
    if net
        .rpc(
            a.peer,
            b.peer,
            digest_bytes_a + memb_a.wire_bytes(),
            digest_bytes_b + memb_b.wire_bytes(),
        )
        .is_err()
    {
        stats.failed_exchanges += 1;
        if a.view.record_failure(b.peer, config.failure_threshold) {
            stats.evictions += 1;
        }
        let end = net.now();
        net.tracer().close(exchange_span, end);
        return false;
    }
    stats.exchanges += 1;
    stats.digest_bytes += (digest_bytes_a + digest_bytes_b) as u64;
    stats.membership_bytes += (memb_a.wire_bytes() + memb_b.wire_bytes()) as u64;
    stats.segment_advert_bytes += (seg_bytes_a + seg_bytes_b) as u64;

    // Both sides adopt the newer segment pointer.
    let newest_segment = match (a.segment_advert, b.segment_advert) {
        (Some(x), Some(y)) => Some(if x.generation >= y.generation { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    };
    a.segment_advert = newest_segment;
    b.segment_advert = newest_segment;

    // Liveness: the exchange itself is direct evidence both ways, and the
    // piggybacked summaries spread third-party heartbeats.
    a.view
        .admit(b.peer, b.zone, b.incarnation, b.heartbeat, now);
    b.view
        .admit(a.peer, a.zone, a.incarnation, a.heartbeat, now);
    let revived =
        a.view.merge_summary(&memb_b, a.peer, now) + b.view.merge_summary(&memb_a, b.peer, now);
    stats.revivals += revived as u64;

    // Both sides learn which versions exist before any fill is admitted.
    for (term, version) in &digest_a.entries {
        b.known.observe(term, *version);
    }
    for (term, version) in &digest_b.entries {
        a.known.observe(term, *version);
    }

    // Per-partner sync state: anti-entropy resets it to the exact full
    // tiers; delta exchanges extend the advertised baseline and fold the
    // partner's delta into the accumulated holdings view; stateless full
    // digests replace the holdings outright (exactly the PR 2 protocol).
    if full {
        // `hot_*` is the whole tier in a full (anti-entropy) exchange.
        // The holdings view is exact again, so any stored partner filter
        // is cleared rather than left to confirm stale coverage.
        let sa = a.sync_entry(b.peer);
        sa.advertised = hot_a.iter().cloned().collect();
        sa.holdings = hot_b.iter().cloned().collect();
        sa.filter = None;
        let sb = b.sync_entry(a.peer);
        sb.advertised = hot_b.iter().cloned().collect();
        sb.holdings = hot_a.iter().cloned().collect();
        sb.filter = None;
    } else if delta_mode {
        let sa = a.sync_entry(b.peer);
        sa.advertised.extend(digest_a.entries.iter().cloned());
        apply_delta(&mut sa.holdings, &digest_b.entries);
        sa.filter = filter_b.clone();
        let sb = b.sync_entry(a.peer);
        sb.advertised.extend(digest_b.entries.iter().cloned());
        apply_delta(&mut sb.holdings, &digest_a.entries);
        sb.filter = filter_a.clone();
    } else {
        a.sync_entry(b.peer).holdings = hot_b.iter().cloned().collect();
        b.sync_entry(a.peer).holdings = hot_a.iter().cloned().collect();
    }

    // Batch-aware adverts lead the fill order: a regular round offers the
    // window's freshly fetched shards before the popularity-ranked hot
    // set, so they cannot be crowded out of the fill budget. The same
    // re-resolved `(term, version)` list the digest advertised is used, so
    // digest and fill decisions always agree on the version.
    let priority_of = |f: &Frontend| {
        if full || !config.batch_advertise {
            Vec::new()
        } else {
            f.resolved_adverts()
        }
    };
    let priority_a = priority_of(a);
    let priority_b = priority_of(b);
    send_fills(
        a,
        b,
        &priority_a,
        &hot_a,
        filter_b.as_ref(),
        net,
        now,
        class,
        fill_budget,
        stats,
    );
    send_fills(
        b,
        a,
        &priority_b,
        &hot_b,
        filter_a.as_ref(),
        net,
        now,
        class,
        fill_budget,
        stats,
    );
    let end = net.now();
    net.tracer().close(exchange_span, end);
    true
}

/// Build one side's digest for an exchange: the full hot set in full mode,
/// the per-partner delta plus the (cached) holdings filter in delta mode —
/// in regular rounds extended by the frontend's batch-aware pending
/// advertisements, which ride ahead of hot-set popularity.
#[allow(clippy::too_many_arguments)]
fn build_digest(
    config: &GossipConfig,
    own: &mut Frontend,
    partner_peer: u64,
    hot_own: &mut Vec<(String, u64)>,
    delta_mode: bool,
    full: bool,
    now: SimInstant,
    stats: &mut GossipStats,
) -> (Digest, Option<ShardFilter>) {
    // Advertise at the *cached* version via [`Frontend::resolved_adverts`]
    // — the identical list the priority fills use.
    let pending: Vec<(String, u64)> = if !full && config.batch_advertise {
        own.resolved_adverts()
    } else {
        Vec::new()
    };
    if delta_mode {
        let filter = own.holdings_filter(hot_own, config.filter_bits_per_entry, now, stats);
        hot_own.truncate(config.hot_set_size);
        let mut entries = delta_entries(hot_own, &own.sync_entry(partner_peer).advertised);
        for (term, version) in pending {
            if !entries.iter().any(|(t, v)| *t == term && *v >= version) {
                entries.push((term, version));
                stats.batch_adverts += 1;
            }
        }
        (Digest::new(entries), Some(filter))
    } else {
        let mut entries = hot_own.clone();
        for (term, version) in pending {
            if !entries.iter().any(|(t, v)| *t == term && *v >= version) {
                entries.push((term, version));
                stats.batch_adverts += 1;
            }
        }
        (Digest::new(entries), None)
    }
}

/// Push the shards `from` believes `to` lacks, as one batched one-way
/// message, then admit them under the version guard. In delta mode a fill
/// is suppressed only on explicitly advertised knowledge confirmed by the
/// partner's holdings filter ([`needs_fill`]); in full-digest mode the
/// partner's current digest is the exact (stateless) suppression set.
/// `priority` entries (batch-aware adverts) are offered before the
/// popularity-ranked `hot` list.
#[allow(clippy::too_many_arguments)]
fn send_fills(
    from: &mut Frontend,
    to: &mut Frontend,
    priority: &[(String, u64)],
    hot: &[(String, u64)],
    to_filter: Option<&ShardFilter>,
    net: &mut SimNet,
    now: SimInstant,
    class: ExchangeClass,
    fill_budget: usize,
    stats: &mut GossipStats,
) {
    let mut fills: Vec<(ShardEntry, SimDuration)> = Vec::new();
    let mut batch_bytes = 0usize;
    let mut offered: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let to_peer = to.peer;
    for (term, version) in priority.iter().chain(hot) {
        if fills.len() >= fill_budget {
            break;
        }
        if !offered.insert(term.as_str()) {
            continue;
        }
        if *version == 0 {
            continue;
        }
        let believed = from.sync_entry(to_peer).holdings.get(term).copied();
        let needed = match to_filter {
            Some(filter) => needs_fill(term, *version, believed, filter),
            None => believed.is_none_or(|b| b < *version),
        };
        if !needed {
            continue;
        }
        let Some(shard) = from.cache().peek_shard(term) else {
            continue;
        };
        batch_bytes += shard.encoded_len() + FILL_ENTRY_OVERHEAD;
        fills.push((shard.clone(), from.cache().adaptive_shard_ttl(term)));
    }
    if fills.is_empty() {
        return;
    }
    let fill_count = fills.len();
    let (from_peer, to_peer_label) = (from.peer, to.peer);
    let fill_start = net.now();
    let fill_span = net.tracer().open_with("gossip.fill", fill_start, || {
        format!("{from_peer}->{to_peer_label} x{fill_count} {batch_bytes}B")
    });
    let sent = net.send(from.peer, to.peer, batch_bytes);
    let end = net.now();
    net.tracer().close(fill_span, end);
    if sent.is_err() {
        // The digest swap already counted as a completed exchange; a
        // dropped fill batch is its own failure class.
        stats.failed_fills += 1;
        return;
    }
    stats.fill_bytes += batch_bytes as u64;
    if from.zone == to.zone {
        stats.intra_zone_fill_bytes += batch_bytes as u64;
    } else {
        stats.cross_zone_fill_bytes += batch_bytes as u64;
    }
    // Per-class overlays (never double-counted into `fill_bytes`): the
    // bootstrap/steady-state split E16 compares, and the anti-entropy
    // cross-zone slice zone-aware anti-entropy exists to shrink.
    match class {
        ExchangeClass::Bootstrap => stats.bootstrap_fill_bytes += batch_bytes as u64,
        ExchangeClass::AntiEntropy => {
            stats.anti_entropy_fill_bytes += batch_bytes as u64;
            if from.zone != to.zone {
                stats.anti_entropy_cross_zone_fill_bytes += batch_bytes as u64;
            }
        }
        ExchangeClass::Regular => {}
    }
    for (shard, sender_ttl) in fills {
        stats.shards_pushed += 1;
        let known = to.known.get(&shard.term);
        let outcome = to
            .cache_mut()
            .store_remote_shard(&shard, known, sender_ttl, now);
        match outcome {
            RemoteAdmit::Accepted => {
                stats.shards_accepted += 1;
                to.known.observe(&shard.term, shard.version);
            }
            RemoteAdmit::Stale => stats.stale_rejected += 1,
            RemoteAdmit::Duplicate => stats.duplicates_skipped += 1,
            RemoteAdmit::Refused => stats.admission_refused += 1,
        }
        // Accepted and duplicate outcomes both prove the partner now holds
        // at least this version; remember it so the next rounds stop
        // re-pushing (a refused admission must be retried, so no record).
        if matches!(outcome, RemoteAdmit::Accepted | RemoteAdmit::Duplicate) {
            let slot = from
                .sync_entry(to_peer)
                .holdings
                .entry(shard.term.clone())
                .or_insert(0);
            *slot = (*slot).max(shard.version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_index::ShardPosting;
    use qb_simnet::NetConfig;

    fn shard(term: &str, version: u64, docs: usize) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        for i in 0..docs as u64 {
            s.upsert(ShardPosting {
                doc_id: i * 7 + 1,
                term_freq: 2,
                doc_len: 50,
                name: format!("page/{term}/{i}"),
                version: 1,
                creator: 1,
            });
        }
        s
    }

    fn fleet(n: usize) -> (GossipFleet, SimNet) {
        let net = SimNet::new(n + 8, NetConfig::lan(), 7);
        let fleet = GossipFleet::new(GossipConfig::enabled(n), &CacheConfig::enabled(), 0xF1EE7);
        (fleet, net)
    }

    fn fleet_with(config: GossipConfig, peers: usize) -> (GossipFleet, SimNet) {
        let net = SimNet::new(peers, NetConfig::lan(), 7);
        let fleet = GossipFleet::new(config, &CacheConfig::enabled(), 0xF1EE7);
        (fleet, net)
    }

    #[test]
    fn one_frontends_fetch_warms_the_fleet() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("honey", 2, 4), now);
        fleet.observe(0, "honey", 2);
        fleet.run_round(&mut net, now, false);
        for i in 1..3 {
            assert_eq!(
                fleet.frontend(i).cache().cached_shard_version("honey"),
                Some(2),
                "frontend {i} should have been warmed"
            );
            assert_eq!(fleet.frontend(i).known.get("honey"), 2);
        }
        let s = fleet.stats();
        assert!(s.shards_accepted >= 2);
        assert!(s.digest_bytes > 0 && s.fill_bytes > 0);
        assert!(s.membership_bytes > 0, "summaries ride every exchange");
        assert_eq!(s.stale_rejected, 0);
        // A second round moves nothing new.
        let accepted_before = fleet.stats().shards_accepted;
        fleet.run_round(&mut net, now, false);
        assert_eq!(fleet.stats().shards_accepted, accepted_before);
    }

    #[test]
    fn traced_round_yields_exchange_and_fill_spans() {
        let (mut fleet, mut net) = fleet(3);
        net.set_tracing(true);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("nectar", 2, 4), now);
        fleet.observe(0, "nectar", 2);
        fleet.run_round(&mut net, now, false);
        let stats = *fleet.stats();
        let trace = net.take_trace();
        let round = trace.named("gossip.round").next().expect("round span");
        assert_eq!(round.detail, "regular");
        // Every completed or failed exchange opened a span under the round.
        assert_eq!(
            trace.named("gossip.exchange").count() as u64,
            stats.exchanges + stats.failed_exchanges
        );
        for ex in trace.named("gossip.exchange") {
            assert_eq!(trace.root_of(ex.id), round.id);
            // The digest swap RPC nests inside its exchange.
            assert!(trace.children(ex.id).any(|s| s.name == "rpc"));
        }
        assert!(
            trace.named("gossip.fill").count() >= 1,
            "the warming round pushes at least one fill batch"
        );
        // Tracing observed the round without perturbing it: an identically
        // seeded untraced fleet accumulates identical stats.
        let (mut fleet2, mut net2) = fleet_with(GossipConfig::enabled(3), 3 + 8);
        fleet2.cache_mut(0).store_shard(&shard("nectar", 2, 4), now);
        fleet2.observe(0, "nectar", 2);
        fleet2.run_round(&mut net2, now, false);
        assert_eq!(*fleet2.stats(), stats);
    }

    #[test]
    fn delta_digests_go_quiet_once_the_fleet_converges() {
        let (mut fleet, mut net) = fleet(4);
        let now = SimInstant::ZERO;
        for t in 0..32 {
            let s = shard(&format!("term{t}"), 1, 3);
            fleet.cache_mut(0).store_shard(&s, now);
            fleet.observe(0, &s.term, 1);
        }
        for _ in 0..4 {
            fleet.run_round(&mut net, now, false);
        }
        let converged = *fleet.stats();
        // Steady state: deltas are empty, so digest traffic collapses to
        // the filters while full digests would keep re-shipping the terms.
        fleet.run_round(&mut net, now, false);
        let after = *fleet.stats();
        let steady_digest = after.digest_bytes - converged.digest_bytes;
        let steady_exchanges = after.exchanges - converged.exchanges;
        assert!(steady_exchanges > 0);
        let per_exchange = steady_digest / steady_exchanges;
        // A full digest of 32 terms costs ~16 + 32*(len+9) > 400 bytes per
        // direction; the converged delta path must be far below one such
        // digest for *both* directions combined.
        assert!(
            per_exchange < 200,
            "converged delta exchange still ships {per_exchange} digest bytes"
        );
        assert_eq!(after.shards_accepted, converged.shards_accepted);
    }

    #[test]
    fn full_digest_mode_preserves_the_uncompressed_protocol() {
        let mut config = GossipConfig::enabled(3);
        config.digest_mode = DigestMode::Full;
        let (mut fleet, mut net) = fleet_with(config, 12);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("honey", 2, 4), now);
        fleet.observe(0, "honey", 2);
        fleet.run_round(&mut net, now, false);
        for i in 1..3 {
            assert_eq!(
                fleet.frontend(i).cache().cached_shard_version("honey"),
                Some(2)
            );
        }
        // Full digests re-ship the whole hot set every round.
        let before = fleet.stats().digest_bytes;
        fleet.run_round(&mut net, now, false);
        let per_round = fleet.stats().digest_bytes - before;
        assert!(per_round > 0);
        assert_eq!(fleet.stats().stale_rejected, 0);
    }

    #[test]
    fn maybe_run_respects_intervals_and_enablement() {
        let (mut fleet, mut net) = fleet(2);
        let interval = fleet.config().round_interval;
        assert!(!fleet.maybe_run(&mut net, SimInstant::ZERO), "not due yet");
        assert!(fleet.maybe_run(&mut net, SimInstant::ZERO + interval));
        assert!(
            !fleet.maybe_run(&mut net, SimInstant::ZERO + interval),
            "same instant must not double-fire"
        );
        // Disabled overlay never runs.
        let net2 = SimNet::new(8, NetConfig::lan(), 1);
        let mut off = GossipFleet::new(GossipConfig::fleet(2), &CacheConfig::enabled(), 1);
        let mut net2 = net2;
        assert!(!off.maybe_run(&mut net2, SimInstant::ZERO + interval));
        assert_eq!(off.stats().rounds, 0);
    }

    #[test]
    fn partitioned_frontends_fail_exchanges_then_recover() {
        let (mut fleet, mut net) = fleet(2);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("nectar", 1, 3), now);
        net.set_partition(fleet.frontend_peer(1), 9);
        fleet.run_round(&mut net, now, false);
        assert!(fleet.stats().failed_exchanges > 0);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("nectar"),
            None
        );
        net.heal_all();
        fleet.run_round(&mut net, now, true);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("nectar"),
            Some(1)
        );
        assert_eq!(fleet.stats().anti_entropy_rounds, 1);
    }

    #[test]
    fn stale_copies_are_rejected_by_the_version_guard() {
        let (mut fleet, mut net) = fleet(2);
        let now = SimInstant::ZERO;
        // Frontend 0 still holds v1; frontend 1 observed the v2 republish
        // (e.g. through a publish event) but has nothing cached.
        fleet.cache_mut(0).store_shard(&shard("news", 1, 2), now);
        fleet.observe(1, "news", 2);
        fleet.run_round(&mut net, now, false);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("news"),
            None,
            "a stale shard must never be accepted over fresher knowledge"
        );
        assert!(fleet.stats().stale_rejected > 0);
    }

    #[test]
    fn warm_start_round_trips_through_the_fleet() {
        let (mut fleet, _net) = fleet(2);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("alpha", 3, 2), now);
        fleet.cache_mut(0).store_shard(&shard("beta", 1, 2), now);
        let snapshot = fleet.export_hot_set(0, 8, now);
        let admitted = fleet.import_hot_set(1, &snapshot, now).unwrap();
        assert_eq!(admitted, 2);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("alpha"),
            Some(3)
        );
        assert_eq!(fleet.frontend(1).known.get("alpha"), 3);
    }

    #[test]
    fn a_joining_frontend_bootstraps_from_a_live_neighbour() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        for t in 0..8 {
            let s = shard(&format!("hot{t}"), 1, 3);
            fleet.cache_mut(0).store_shard(&s, now);
            fleet.observe(0, &s.term, 1);
        }
        fleet.run_round(&mut net, now, false);
        // A new frontend joins on a fresh peer and warms itself from the
        // fleet (bootstrap-by-anti-entropy) without touching the DHT.
        let idx = fleet.join(&mut net, 5, now).expect("free peer joins");
        assert_eq!(idx, 3);
        assert!(
            fleet.join(&mut net, 0, now).is_err(),
            "a peer already hosting a frontend cannot join again"
        );
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.active_count(), 4);
        assert!(fleet.is_active(idx));
        assert_eq!(fleet.stats().joins, 1);
        let warmed = (0..8)
            .filter(|t| {
                fleet
                    .frontend(idx)
                    .cache()
                    .cached_shard_version(&format!("hot{t}"))
                    .is_some()
            })
            .count();
        assert_eq!(warmed, 8, "bootstrap must move the neighbour's hot set");
        // The joiner learned the fleet roster from the neighbour's summary.
        assert!(fleet.frontend(idx).view().len() >= 4);
        // And the fleet learns the joiner through subsequent rounds.
        fleet.run_round(&mut net, now, false);
        assert!(fleet.frontend(0).view().get(5).is_some());
    }

    #[test]
    fn graceful_leave_and_crash_shrink_the_sample_set() {
        let (mut fleet, mut net) = fleet(4);
        let now = SimInstant::ZERO;
        fleet.run_round(&mut net, now, false);
        fleet.leave(&mut net, 3);
        assert!(!fleet.is_active(3));
        assert_eq!(fleet.active_count(), 3);
        assert_eq!(fleet.stats().leaves, 1);
        assert!(!net.is_online(fleet.frontend_peer(3)));

        fleet.crash(&mut net, 2);
        assert_eq!(fleet.stats().crashes, 1);
        assert_eq!(fleet.active_count(), 2);
        // Enough failed exchanges mark the crashed member dead in the
        // survivors' views even before the liveness timeout.
        let threshold = fleet.config().failure_threshold;
        for _ in 0..(threshold as usize * 4) {
            fleet.run_round(&mut net, now, false);
        }
        for i in 0..2 {
            let view = fleet.frontend(i).view();
            if let Some(m) = view.get(fleet.frontend_peer(2)) {
                assert!(!m.alive, "survivor {i} must evict the crashed member");
            }
        }
        assert!(fleet.stats().evictions > 0);
    }

    #[test]
    fn silent_members_are_evicted_by_the_liveness_timeout() {
        let mut config = GossipConfig::enabled(3);
        config.failure_threshold = u32::MAX; // isolate the timeout path
        let (mut fleet, mut net) = fleet_with(config, 12);
        let t0 = SimInstant::ZERO + SimDuration::from_millis(100);
        fleet.run_round(&mut net, t0, false);
        fleet.crash(&mut net, 2);
        let timeout = fleet.config().liveness_timeout;
        let late = t0 + timeout + SimDuration::from_millis(1);
        fleet.run_round(&mut net, late, false);
        for i in 0..2 {
            let m = fleet.frontend(i).view().get(fleet.frontend_peer(2));
            assert!(
                m.is_none_or(|m| !m.alive),
                "frontend {i} must time the silent member out"
            );
        }
    }

    #[test]
    fn a_rejoined_frontend_is_revived_and_rewarmed() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("honey", 2, 4), now);
        fleet.observe(0, "honey", 2);
        fleet.run_round(&mut net, now, false);
        assert_eq!(
            fleet.frontend(2).cache().cached_shard_version("honey"),
            Some(2)
        );
        fleet.crash(&mut net, 2);
        let threshold = fleet.config().failure_threshold;
        for _ in 0..(threshold as usize * 4) {
            fleet.run_round(&mut net, now, false);
        }
        // Restart: fresh cache, but the bootstrap exchange re-warms it from
        // the fleet (not the DHT) before it serves anything.
        fleet.rejoin(&mut net, 2, now);
        assert!(fleet.is_active(2));
        assert_eq!(
            fleet.frontend(2).cache().cached_shard_version("honey"),
            Some(2),
            "rejoin must warm from the fleet"
        );
        // The bumped heartbeat revives it in the survivors' views as the
        // rounds spread the news.
        for _ in 0..3 {
            fleet.run_round(&mut net, now, false);
        }
        let m = fleet.frontend(0).view().get(fleet.frontend_peer(2));
        assert!(
            m.is_some_and(|m| m.alive),
            "rejoined member must be revived"
        );
    }

    #[test]
    fn batch_adverts_ride_the_next_round_ahead_of_popularity() {
        // A tiny hot set: the two popular terms fill every digest, so a
        // freshly fetched (zero-popularity) shard would normally wait for
        // anti-entropy. A batch advert promotes it into the very next
        // round.
        let mut config = GossipConfig::enabled(3);
        config.hot_set_size = 2;
        config.max_fills_per_exchange = 2;
        let run = |batch_advertise: bool| -> (Option<u64>, u64) {
            let mut config = config.clone();
            config.batch_advertise = batch_advertise;
            let (mut fleet, mut net) = fleet_with(config, 12);
            let now = SimInstant::ZERO;
            for term in ["hotA", "hotB"] {
                fleet.cache_mut(0).store_shard(&shard(term, 1, 3), now);
                fleet.observe(0, term, 1);
                for _ in 0..8 {
                    let _ = fleet.cache_mut(0).lookup_shard(term, now, 1);
                }
            }
            // The batch window's fresh fetch: cold in popularity terms.
            fleet.cache_mut(0).store_shard(&shard("fresh", 2, 3), now);
            fleet.observe(0, "fresh", 2);
            fleet.note_batch_fetches(0, &[("fresh".to_string(), 2)]);
            fleet.run_round(&mut net, now, false);
            let warmed = (1..3)
                .filter_map(|i| fleet.frontend(i).cache().cached_shard_version("fresh"))
                .max();
            (warmed, fleet.stats().batch_adverts)
        };
        let (without, adverts_off) = run(false);
        assert_eq!(without, None, "below the hot-set cut: nothing moves");
        assert_eq!(adverts_off, 0);
        let (with, adverts_on) = run(true);
        assert_eq!(with, Some(2), "the advert warms a partner one round early");
        assert!(adverts_on > 0);
        // Adverts ride exactly one round, then the queue drains.
        let mut config2 = config.clone();
        config2.batch_advertise = true;
        let (mut fleet, mut net) = fleet_with(config2, 12);
        fleet
            .cache_mut(0)
            .store_shard(&shard("fresh", 2, 3), SimInstant::ZERO);
        fleet.note_batch_fetches(0, &[("fresh".to_string(), 2)]);
        assert_eq!(fleet.frontend(0).pending_adverts().len(), 1);
        fleet.run_round(&mut net, SimInstant::ZERO, false);
        assert!(fleet.frontend(0).pending_adverts().is_empty());
    }

    #[test]
    fn holdings_filter_is_reused_while_nothing_changes() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        for t in 0..8 {
            let s = shard(&format!("term{t}"), 1, 3);
            fleet.cache_mut(0).store_shard(&s, now);
            fleet.observe(0, &s.term, 1);
        }
        // Round 1 moves fills (caches mutate: filters rebuild). Run more
        // rounds at the same instant once the fleet converged: holdings
        // stop changing, so every frontend serves its cached filter.
        for _ in 0..3 {
            fleet.run_round(&mut net, now, false);
        }
        let converged = *fleet.stats();
        assert!(converged.filter_builds > 0);
        fleet.run_round(&mut net, now, false);
        let after = *fleet.stats();
        let builds = after.filter_builds - converged.filter_builds;
        let reuses = after.filter_reuses - converged.filter_reuses;
        assert_eq!(builds, 0, "steady round must not rebuild any filter");
        assert!(
            reuses >= (after.exchanges - converged.exchanges) * 2,
            "both sides of every steady exchange reuse ({reuses})"
        );
        // A holdings change invalidates the cached filter.
        fleet.cache_mut(0).store_shard(&shard("newterm", 1, 2), now);
        fleet.run_round(&mut net, now, false);
        assert!(fleet.stats().filter_builds > after.filter_builds);
    }

    #[test]
    fn rejoin_bumps_the_incarnation_and_resets_the_heartbeat() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        for _ in 0..5 {
            fleet.run_round(&mut net, now, false);
        }
        let old_heartbeat = fleet.frontend(2).heartbeat();
        assert!(old_heartbeat >= 5);
        assert_eq!(fleet.frontend(2).incarnation(), 0);
        fleet.crash(&mut net, 2);
        fleet.rejoin(&mut net, 2, now);
        assert_eq!(fleet.frontend(2).incarnation(), 1, "restart bumps epoch");
        assert_eq!(
            fleet.frontend(2).heartbeat(),
            0,
            "a restarted process remembers no counter"
        );
        // Despite the lower heartbeat, the bumped incarnation makes the
        // rejoined member's gossip supersede every stale view of it.
        for _ in 0..3 {
            fleet.run_round(&mut net, now, false);
        }
        let seen = fleet
            .frontend(0)
            .view()
            .get(fleet.frontend_peer(2))
            .expect("known member");
        assert!(seen.alive);
        assert_eq!(seen.incarnation, 1);
        assert!(seen.heartbeat < old_heartbeat);
    }

    #[test]
    fn zone_bias_shapes_partner_choice() {
        let mut config = GossipConfig::enabled_zoned(12, 3);
        config.cross_zone_probability = 0.1;
        let (mut fleet, mut net) = fleet_with(config, 24);
        assert_eq!(fleet.zone_of(0), 0);
        assert_eq!(fleet.zone_of(4), 1);
        assert_eq!(fleet.zone_of(11), 2);
        let now = SimInstant::ZERO;
        for _ in 0..20 {
            fleet.run_round(&mut net, now, false);
        }
        // Exchanges happened and nothing was evicted in a healthy fleet.
        assert!(fleet.stats().exchanges > 0);
        assert_eq!(fleet.stats().evictions, 0);
    }

    #[test]
    fn fill_bytes_are_split_by_zone_class() {
        // An unzoned overlay charges every fill as intra-zone.
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("honey", 2, 4), now);
        fleet.observe(0, "honey", 2);
        fleet.run_round(&mut net, now, false);
        let s = *fleet.stats();
        assert!(s.fill_bytes > 0);
        assert_eq!(s.intra_zone_fill_bytes, s.fill_bytes);
        assert_eq!(s.cross_zone_fill_bytes, 0);

        // A zoned overlay splits by whether the pair shares a zone label,
        // and the two slices always sum to the total.
        let mut config = GossipConfig::enabled_zoned(12, 3);
        config.cross_zone_probability = 0.5;
        let (mut fleet, mut net) = fleet_with(config, 24);
        for t in 0..24 {
            let s = shard(&format!("term{t}"), 1, 3);
            fleet.cache_mut(0).store_shard(&s, now);
            fleet.observe(0, &s.term, 1);
        }
        for _ in 0..10 {
            fleet.run_round(&mut net, now, false);
        }
        let s = *fleet.stats();
        assert!(s.intra_zone_fill_bytes > 0);
        assert!(s.cross_zone_fill_bytes > 0);
        assert_eq!(
            s.intra_zone_fill_bytes + s.cross_zone_fill_bytes,
            s.fill_bytes
        );
    }

    #[test]
    fn zone_budgets_throttle_cross_zone_fills() {
        let run = |zone_budgets: bool| -> GossipStats {
            let mut config = GossipConfig::enabled_zoned(12, 3);
            config.cross_zone_probability = 0.5;
            config.zone_fill_budgets = zone_budgets;
            config.max_fills_per_exchange = 8;
            config.cross_zone_fill_budget = 1;
            // No anti-entropy inside the horizon: it reconciles at the flat
            // budget and would blur the per-round accounting.
            config.anti_entropy_interval = SimDuration::from_secs(3_600);
            let (mut fleet, mut net) = fleet_with(config, 24);
            let now = SimInstant::ZERO;
            for t in 0..24 {
                let s = shard(&format!("term{t}"), 1, 3);
                fleet.cache_mut(0).store_shard(&s, now);
                fleet.observe(0, &s.term, 1);
            }
            for _ in 0..3 {
                fleet.run_round(&mut net, now, false);
            }
            *fleet.stats()
        };
        let flat = run(false);
        let zoned = run(true);
        assert!(
            zoned.cross_zone_fill_bytes < flat.cross_zone_fill_bytes,
            "cross-zone cap of 1 must cut cross-zone fill bytes ({} vs {})",
            zoned.cross_zone_fill_bytes,
            flat.cross_zone_fill_bytes
        );
    }

    fn segment_stack(n: usize) -> (SimNet, qb_dht::DhtNetwork, StorageNetwork) {
        let mut net = SimNet::new(n, NetConfig::lan(), 7);
        let dht = qb_dht::DhtNetwork::build(&mut net, qb_dht::DhtConfig::small());
        let storage = StorageNetwork::new(n, qb_storage::StorageConfig::small());
        (net, dht, storage)
    }

    #[test]
    fn segment_join_bootstraps_from_the_artifact() {
        let (mut net, mut dht, mut storage) = segment_stack(16);
        let mut fleet =
            GossipFleet::new(GossipConfig::enabled(3), &CacheConfig::enabled(), 0xF1EE7);
        let now = SimInstant::ZERO;
        for t in 0..6 {
            let s = shard(&format!("term{t}"), 2, 3);
            fleet.cache_mut(0).store_shard(&s, now);
            fleet.observe(0, &s.term, 2);
        }
        // The writer publishes the artifact and notifies the fleet.
        let segment = qb_segment::Segment::export(fleet.frontend(0).cache(), usize::MAX, now);
        let (sref, _) =
            qb_segment::publish_segment(&mut net, &mut dht, &mut storage, 0, &segment, 1).unwrap();
        fleet.note_segment_published(&net, 0, sref);
        assert_eq!(fleet.latest_segment_advert(), Some(sref));

        let before = net.stats().clone();
        let (idx, report) = fleet
            .join_with_segment(&mut net, &mut dht, &mut storage, 9, now)
            .unwrap();
        assert!(report.used_segment);
        assert_eq!(report.generation, 1);
        assert_eq!(report.imported.accepted, 6);
        assert!(report.fetch_bytes > 0);
        for t in 0..6 {
            let term = format!("term{t}");
            assert_eq!(
                fleet.frontend(idx).cache().cached_shard_version(&term),
                Some(2),
                "joiner must hold {term} from the artifact"
            );
            assert_eq!(fleet.frontend(idx).known.get(&term), 2);
        }
        // The joiner now advertises the artifact itself, and every byte of
        // the probe + fetch showed up on the network.
        assert_eq!(fleet.frontend(idx).segment_advert(), Some(sref));
        assert!(fleet.stats().segment_advert_bytes > 0);
        let delta = net.stats().delta_since(&before);
        assert!(delta.bytes >= report.fetch_bytes, "no free fetch bytes");
    }

    #[test]
    fn segment_join_falls_back_to_gossip_bootstrap() {
        let (mut net, mut dht, mut storage) = segment_stack(16);
        let mut fleet =
            GossipFleet::new(GossipConfig::enabled(3), &CacheConfig::enabled(), 0xF1EE7);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("honey", 2, 4), now);
        fleet.observe(0, "honey", 2);
        // Converge the veterans so any bootstrap neighbour can warm the
        // joiner.
        fleet.run_round(&mut net, now, false);
        // Nobody advertises an artifact: the join probes, then warms the
        // classic way.
        let (idx, report) = fleet
            .join_with_segment(&mut net, &mut dht, &mut storage, 9, now)
            .unwrap();
        assert!(!report.used_segment);
        assert!(report.advert_probes > 0);
        assert_eq!(report.imported.accepted, 0);
        assert_eq!(
            fleet.frontend(idx).cache().cached_shard_version("honey"),
            Some(2),
            "fallback bootstrap must still warm the joiner"
        );
    }

    #[test]
    fn bootstrap_fill_bytes_are_split_from_steady_state() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        for t in 0..5 {
            let s = shard(&format!("term{t}"), 1, 3);
            fleet.cache_mut(0).store_shard(&s, now);
            fleet.observe(0, &s.term, 1);
        }
        // Converge the veterans, then measure the join against that floor:
        // everything a join's warm-up moves is bootstrap-class.
        fleet.run_round(&mut net, now, false);
        let fill_floor = fleet.stats().fill_bytes;
        fleet.join(&mut net, 7, now).unwrap();
        let s = fleet.stats();
        assert!(s.bootstrap_fill_bytes > 0, "join warm-up must be classed");
        assert_eq!(s.bootstrap_fill_bytes, s.fill_bytes - fill_floor);
        assert_eq!(s.anti_entropy_fill_bytes, 0);
        // Steady-state rounds grow fill_bytes but not the bootstrap class.
        let bootstrap_before = s.bootstrap_fill_bytes;
        let fill_before = s.fill_bytes;
        fleet.cache_mut(0).store_shard(&shard("fresh", 1, 2), now);
        fleet.observe(0, "fresh", 1);
        fleet.run_round(&mut net, now, false);
        let s = fleet.stats();
        assert!(s.fill_bytes > fill_before);
        assert_eq!(s.bootstrap_fill_bytes, bootstrap_before);
        // An anti-entropy round lands in its own class too.
        fleet.cache_mut(0).store_shard(&shard("late", 3, 2), now);
        fleet.observe(0, "late", 3);
        fleet.run_round(&mut net, now, true);
        let s = fleet.stats();
        assert!(s.anti_entropy_fill_bytes > 0);
        assert_eq!(s.bootstrap_fill_bytes, bootstrap_before);
        assert_eq!(
            s.intra_zone_fill_bytes + s.cross_zone_fill_bytes,
            s.fill_bytes,
            "class overlays never break the zone split invariant"
        );
    }

    #[test]
    fn zone_covering_partner_requires_confirmed_in_zone_coverage() {
        let mut config = GossipConfig::enabled_zoned(4, 2);
        config.zone_aware_anti_entropy = true;
        let (mut fleet, net) = fleet_with(config, 12);
        let now = SimInstant::ZERO;
        // Frontend 0 (zone 0) knows of a shard it does not hold.
        fleet.observe(0, "missing", 3);
        // Nothing known about any partner yet: no candidate qualifies.
        assert_eq!(fleet.zone_covering_partner(&net, 0), None);
        // Frontend 1 (zone 1) advertises coverage — wrong zone, skipped.
        fleet.frontends[0]
            .sync_entry(1)
            .holdings
            .insert("missing".into(), 3);
        assert_eq!(fleet.zone_covering_partner(&net, 0), None);
        // Frontend 2 (zone 0) advertises an older version: not coverage.
        fleet.frontends[0]
            .sync_entry(2)
            .holdings
            .insert("missing".into(), 2);
        assert_eq!(fleet.zone_covering_partner(&net, 0), None);
        // Fresh enough: the in-zone member is chosen.
        fleet.frontends[0]
            .sync_entry(2)
            .holdings
            .insert("missing".into(), 3);
        assert_eq!(fleet.zone_covering_partner(&net, 0), Some(2));
        // The partner's holdings filter alone also confirms coverage.
        fleet.frontends[0].sync_entry(2).holdings.clear();
        fleet.frontends[0].sync_entry(2).filter =
            Some(ShardFilter::build(&[("missing".into(), 3)], 8));
        assert_eq!(fleet.zone_covering_partner(&net, 0), Some(2));
        // Nothing missing → no redirection at all.
        fleet.cache_mut(0).store_shard(&shard("missing", 3, 2), now);
        assert_eq!(fleet.zone_covering_partner(&net, 0), None);
    }

    #[test]
    fn zone_aware_anti_entropy_cuts_cross_zone_reconciliation_bytes() {
        let run = |zone_aware: bool| -> GossipStats {
            let mut config = GossipConfig::enabled_zoned(8, 2);
            config.zone_aware_anti_entropy = zone_aware;
            config.cross_zone_probability = 0.6;
            let (mut fleet, mut net) = fleet_with(config, 16);
            let now = SimInstant::ZERO;
            // Every zone has a fully-stocked member, so in-zone coverage
            // exists for everything a frontend may miss.
            for owner in [0usize, 1usize] {
                for t in 0..10 {
                    let s = shard(&format!("term{t}"), 2, 3);
                    fleet.cache_mut(owner).store_shard(&s, now);
                }
            }
            for i in 0..8 {
                for t in 0..10 {
                    fleet.observe(i, &format!("term{t}"), 2);
                }
            }
            // One regular round establishes per-partner sync state (and
            // some fills); anti-entropy rounds then reconcile the rest.
            fleet.run_round(&mut net, now, false);
            for _ in 0..4 {
                fleet.run_round(&mut net, now, true);
            }
            *fleet.stats()
        };
        let blind = run(false);
        let aware = run(true);
        assert!(
            aware.anti_entropy_cross_zone_fill_bytes <= blind.anti_entropy_cross_zone_fill_bytes,
            "zone-aware anti-entropy must not add cross-zone bytes ({} vs {})",
            aware.anti_entropy_cross_zone_fill_bytes,
            blind.anti_entropy_cross_zone_fill_bytes
        );
        // Reconciliation itself is unweakened: everyone converged.
        assert!(aware.anti_entropy_fill_bytes > 0 || aware.fill_bytes > 0);
    }
}
