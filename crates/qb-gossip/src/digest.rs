//! Digests and version vectors — the metadata side of the gossip protocol.

use std::collections::BTreeMap;

/// A digest of one frontend's (hot) cached shards: `(term, version)` pairs
/// in descending popularity order. Exchanging digests first lets peers ship
/// only the shards the other side actually lacks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Digest {
    /// `(term, shard version)` pairs, hottest first.
    pub entries: Vec<(String, u64)>,
}

impl Digest {
    /// Build from a cache's `(term, version)` listing.
    pub fn new(entries: Vec<(String, u64)>) -> Digest {
        Digest { entries }
    }

    /// Number of advertised terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes this digest occupies on the wire: each entry ships the term,
    /// a varint-bounded version (budgeted at 8) and a length prefix, plus a
    /// small frame header. Charged to the simulated network per exchange.
    pub fn wire_bytes(&self) -> usize {
        16 + self.entries.iter().map(|(t, _)| t.len() + 9).sum::<usize>()
    }

    /// The version this digest advertises for `term`, if any.
    pub fn version_of(&self, term: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(t, _)| t == term)
            .map(|(_, v)| *v)
    }
}

/// Per-term version knowledge of one frontend — the version-vector guard of
/// the protocol. A frontend records the highest shard version it has seen
/// for each term (own DHT fetches, publish events it observed, gossip
/// digests and fills); an incoming fill older than the recorded version is
/// rejected as stale, so a lagging replica can never overwrite fresher data
/// no matter how gossip routes it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionVector {
    versions: BTreeMap<String, u64>,
}

impl VersionVector {
    /// An empty vector (nothing observed yet).
    pub fn new() -> VersionVector {
        VersionVector::default()
    }

    /// Record that `version` of `term` exists. Monotonic: an older
    /// observation never lowers the recorded version.
    pub fn observe(&mut self, term: &str, version: u64) {
        let slot = self.versions.entry(term.to_string()).or_insert(0);
        *slot = (*slot).max(version);
    }

    /// Highest version observed for `term` (0 when never observed).
    pub fn get(&self, term: &str) -> u64 {
        self.versions.get(term).copied().unwrap_or(0)
    }

    /// Number of terms with a recorded version.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Fold another vector in (pairwise max).
    pub fn merge(&mut self, other: &VersionVector) {
        for (term, v) in &other.versions {
            self.observe(term, *v);
        }
    }

    /// Does this vector dominate `other` (>= on every term of `other`)?
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other.versions.iter().all(|(t, v)| self.get(t) >= *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_wire_bytes_scale_with_terms() {
        let empty = Digest::default();
        assert!(empty.is_empty());
        let d = Digest::new(vec![("honey".into(), 3), ("bees".into(), 1)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.wire_bytes(), 16 + (5 + 9) + (4 + 9));
        assert!(d.wire_bytes() > empty.wire_bytes());
        assert_eq!(d.version_of("honey"), Some(3));
        assert_eq!(d.version_of("nope"), None);
    }

    #[test]
    fn version_vector_is_monotonic() {
        let mut v = VersionVector::new();
        assert!(v.is_empty());
        assert_eq!(v.get("t"), 0);
        v.observe("t", 3);
        v.observe("t", 1); // older observation is a no-op
        assert_eq!(v.get("t"), 3);
        v.observe("t", 5);
        assert_eq!(v.get("t"), 5);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn merge_and_dominates() {
        let mut a = VersionVector::new();
        a.observe("x", 2);
        a.observe("y", 1);
        let mut b = VersionVector::new();
        b.observe("x", 1);
        b.observe("z", 4);
        assert!(!a.dominates(&b));
        a.merge(&b);
        assert_eq!(a.get("x"), 2);
        assert_eq!(a.get("z"), 4);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }
}
