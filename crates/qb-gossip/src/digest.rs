//! Digests and version vectors — the metadata side of the gossip protocol.
//!
//! Two digest encodings exist (selected by `GossipConfig::digest_mode`):
//!
//! * **Full** — every exchange ships the whole hot set as `(term, version)`
//!   pairs. Simple, stateless, and ~80% of E10's gossip bytes.
//! * **Delta** — an exchange ships only the hot-set entries that changed
//!   since the last exchange with that peer, plus a compact
//!   [`ShardFilter`] over the sender's current
//!   holdings. The receiver reconstructs the sender's state from its
//!   accumulated per-peer view ([`apply_delta`]); the filter catches
//!   evictions the deltas cannot express, and the periodic full-digest
//!   anti-entropy round remains the exact safety net. Fill decisions
//!   ([`needs_fill`]) only ever suppress a fill on *explicitly advertised*
//!   knowledge confirmed by the filter, so compression can delay a fill
//!   (until anti-entropy) but never lose one.

use crate::filter::ShardFilter;
use std::collections::{BTreeMap, HashMap};

/// A digest of one frontend's (hot) cached shards: `(term, version)` pairs
/// in descending popularity order. Exchanging digests first lets peers ship
/// only the shards the other side actually lacks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Digest {
    /// `(term, shard version)` pairs, hottest first.
    pub entries: Vec<(String, u64)>,
}

impl Digest {
    /// Build from a cache's `(term, version)` listing.
    pub fn new(entries: Vec<(String, u64)>) -> Digest {
        Digest { entries }
    }

    /// Number of advertised terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes this digest occupies on the wire: each entry ships the term,
    /// a varint-bounded version (budgeted at 8) and a length prefix, plus a
    /// small frame header. Charged to the simulated network per exchange.
    pub fn wire_bytes(&self) -> usize {
        16 + self.entries.iter().map(|(t, _)| t.len() + 9).sum::<usize>()
    }

    /// The version this digest advertises for `term`, if any.
    pub fn version_of(&self, term: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(t, _)| t == term)
            .map(|(_, v)| *v)
    }
}

/// The hot-set entries worth advertising to a peer that was last told
/// `advertised`: everything whose `(term, version)` it has not been told
/// yet. The complement of this delta is exactly what the peer can
/// reconstruct from its accumulated view, so `delta + accumulated view =
/// full digest` (asserted by the compression proptest).
pub fn delta_entries(
    hot: &[(String, u64)],
    advertised: &HashMap<String, u64>,
) -> Vec<(String, u64)> {
    hot.iter()
        .filter(|(term, version)| advertised.get(term) != Some(version))
        .cloned()
        .collect()
}

/// Fold a received delta into the accumulated view of a peer's holdings.
/// Monotonic per term: a delta can only raise the version the peer is
/// believed to hold (the version guard receiver-side makes a genuinely
/// downgraded shard impossible to accept anyway).
pub fn apply_delta(view: &mut HashMap<String, u64>, delta: &[(String, u64)]) {
    for (term, version) in delta {
        let slot = view.entry(term.clone()).or_insert(0);
        *slot = (*slot).max(*version);
    }
}

/// Should `term`'s shard at `version` be filled to a peer believed to hold
/// `believed` of it, whose current holdings are summarized by `filter`? A
/// fill is suppressed only when the peer explicitly advertised an
/// equal-or-newer version **and** the filter still confirms it holds that
/// exact version (evictions drop out of the filter, so a stale belief
/// cannot suppress forever). The filter alone never suppresses: with no
/// advertised belief the fill is always sent.
pub fn needs_fill(term: &str, version: u64, believed: Option<u64>, filter: &ShardFilter) -> bool {
    match believed {
        Some(b) if b >= version => !filter.contains(term, b),
        _ => true,
    }
}

/// Per-term version knowledge of one frontend — the version-vector guard of
/// the protocol. A frontend records the highest shard version it has seen
/// for each term (own DHT fetches, publish events it observed, gossip
/// digests and fills); an incoming fill older than the recorded version is
/// rejected as stale, so a lagging replica can never overwrite fresher data
/// no matter how gossip routes it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionVector {
    versions: BTreeMap<String, u64>,
}

impl VersionVector {
    /// An empty vector (nothing observed yet).
    pub fn new() -> VersionVector {
        VersionVector::default()
    }

    /// Record that `version` of `term` exists. Monotonic: an older
    /// observation never lowers the recorded version.
    pub fn observe(&mut self, term: &str, version: u64) {
        let slot = self.versions.entry(term.to_string()).or_insert(0);
        *slot = (*slot).max(version);
    }

    /// Highest version observed for `term` (0 when never observed).
    pub fn get(&self, term: &str) -> u64 {
        self.versions.get(term).copied().unwrap_or(0)
    }

    /// Number of terms with a recorded version.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterate over `(term, highest observed version)` in term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.versions.iter().map(|(t, v)| (t.as_str(), *v))
    }

    /// Fold another vector in (pairwise max).
    pub fn merge(&mut self, other: &VersionVector) {
        for (term, v) in &other.versions {
            self.observe(term, *v);
        }
    }

    /// Does this vector dominate `other` (>= on every term of `other`)?
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other.versions.iter().all(|(t, v)| self.get(t) >= *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_wire_bytes_scale_with_terms() {
        let empty = Digest::default();
        assert!(empty.is_empty());
        let d = Digest::new(vec![("honey".into(), 3), ("bees".into(), 1)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.wire_bytes(), 16 + (5 + 9) + (4 + 9));
        assert!(d.wire_bytes() > empty.wire_bytes());
        assert_eq!(d.version_of("honey"), Some(3));
        assert_eq!(d.version_of("nope"), None);
    }

    #[test]
    fn version_vector_is_monotonic() {
        let mut v = VersionVector::new();
        assert!(v.is_empty());
        assert_eq!(v.get("t"), 0);
        v.observe("t", 3);
        v.observe("t", 1); // older observation is a no-op
        assert_eq!(v.get("t"), 3);
        v.observe("t", 5);
        assert_eq!(v.get("t"), 5);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn delta_reconstruction_matches_the_full_digest() {
        let hot = vec![
            ("alpha".to_string(), 3u64),
            ("beta".to_string(), 1),
            ("gamma".to_string(), 2),
        ];
        // The peer was previously told alpha@3 and beta@1; only gamma (new)
        // rides the delta — plus alpha again once it moves to version 4.
        let mut advertised: HashMap<String, u64> = HashMap::new();
        advertised.insert("alpha".into(), 3);
        advertised.insert("beta".into(), 1);
        let delta = delta_entries(&hot, &advertised);
        assert_eq!(delta, vec![("gamma".to_string(), 2)]);

        let mut view = advertised.clone();
        apply_delta(&mut view, &delta);
        for (term, version) in &hot {
            assert_eq!(view.get(term), Some(version), "view must equal full digest");
        }

        let bumped = vec![("alpha".to_string(), 4u64)];
        let delta2 = delta_entries(&bumped, &advertised);
        assert_eq!(delta2, bumped, "a version bump re-enters the delta");
        apply_delta(&mut view, &delta2);
        assert_eq!(view.get("alpha"), Some(&4));
        // A (stale) replayed delta never lowers the reconstructed version.
        apply_delta(&mut view, &[("alpha".to_string(), 2)]);
        assert_eq!(view.get("alpha"), Some(&4));
    }

    #[test]
    fn needs_fill_never_suppresses_on_the_filter_alone() {
        use crate::filter::ShardFilter;
        let holdings = vec![("alpha".to_string(), 3u64)];
        let filter = ShardFilter::build(&holdings, 8);
        // Advertised + confirmed: suppressed.
        assert!(!needs_fill("alpha", 3, Some(3), &filter));
        assert!(!needs_fill("alpha", 2, Some(3), &filter));
        // Peer holds an older version: fill.
        assert!(needs_fill("alpha", 4, Some(3), &filter));
        // Never advertised: fill, even though the filter (by collision or
        // otherwise) could claim the key.
        assert!(needs_fill("alpha", 3, None, &filter));
        // Advertised but since evicted (filter no longer confirms): fill.
        let evicted = ShardFilter::build(&[], 8);
        assert!(needs_fill("alpha", 3, Some(3), &evicted));
    }

    #[test]
    fn merge_and_dominates() {
        let mut a = VersionVector::new();
        a.observe("x", 2);
        a.observe("y", 1);
        let mut b = VersionVector::new();
        b.observe("x", 1);
        b.observe("z", 4);
        assert!(!a.dominates(&b));
        a.merge(&b);
        assert_eq!(a.get("x"), 2);
        assert_eq!(a.get("z"), 4);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }
}
