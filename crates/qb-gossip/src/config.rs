//! Gossip overlay configuration.

use qb_common::{QbError, QbResult, SimDuration};

/// How hot-set digests are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestMode {
    /// Every exchange ships the full hot set as `(term, version)` pairs —
    /// the PR 2 protocol, kept for comparison runs (E12 measures the delta
    /// encoding against it).
    Full,
    /// Exchanges ship only the entries that changed since the last exchange
    /// with that peer, plus a compact bloom-style filter over the sender's
    /// current holdings; periodic anti-entropy rounds still swap full
    /// digests as the exact safety net. Steady-state digest bytes drop an
    /// order of magnitude (asserted in E12).
    Delta,
}

/// Configuration of the cooperative cache-gossip overlay.
///
/// Two independent switches control the feature:
///
/// * `num_frontends > 0` turns on **fleet mode**: the engine runs that many
///   query frontends, each with its own private query-serving cache, instead
///   of the single shared cache. This is the gossip-off baseline E10
///   measures against.
/// * `enabled` turns on the **gossip exchange** between those frontends:
///   periodic digest/fill rounds plus slower anti-entropy reconciliation.
///
/// Both default to off so existing deployments keep their exact behavior.
///
/// The overlay is **churn-aware**: frontends may join (bootstrapping their
/// cache by anti-entropy from a live neighbour), leave gracefully or crash;
/// liveness is tracked through gossiped heartbeats, and dead members are
/// evicted from the sample set after `liveness_timeout` of silence or
/// `failure_threshold` consecutive failed exchanges. It is **zone-aware**:
/// with `zones > 1` each frontend carries a latency-zone label (matching
/// `qb-simnet`'s `peer % zones` assignment) and partner sampling prefers
/// the own zone, escaping cross-zone with `cross_zone_probability`.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Master switch for the gossip exchange between frontends.
    pub enabled: bool,
    /// Number of query frontends in the fleet (0 = fleet mode off, the
    /// engine keeps its single query-serving cache).
    pub num_frontends: usize,
    /// Gossip partners each frontend contacts per round.
    pub fanout: usize,
    /// Simulated time between gossip rounds.
    pub round_interval: SimDuration,
    /// Simulated time between anti-entropy rounds. An anti-entropy exchange
    /// digests the *entire* shard tier instead of just the hot set, so two
    /// frontends reconcile fully after a partition heals — and it may sample
    /// members currently believed dead, re-establishing contact after a
    /// partition or crash recovery.
    pub anti_entropy_interval: SimDuration,
    /// Terms per digest in a regular (hot-set) round.
    pub hot_set_size: usize,
    /// Upper bound on shard fills sent per exchange direction, so one
    /// exchange can never turn into a bulk transfer. A join's bootstrap
    /// exchange is allowed `max(hot_set_size, max_fills_per_exchange)`.
    pub max_fills_per_exchange: usize,
    /// Digest encoding for regular rounds (anti-entropy always swaps full
    /// digests).
    pub digest_mode: DigestMode,
    /// Bits per holding entry in the delta digests' membership filter
    /// (larger = fewer false positives = fewer fills delayed to the next
    /// anti-entropy round).
    pub filter_bits_per_entry: usize,
    /// Number of latency zones frontends are spread over (round-robin by
    /// peer id, matching `qb-simnet`'s zone assignment). 1 = zone-unaware.
    pub zones: usize,
    /// Probability that a partner pick escapes to a different zone when
    /// same-zone candidates exist (the fleet-wide convergence links).
    pub cross_zone_probability: f64,
    /// A member not heard from (directly or via gossiped heartbeats) for
    /// this long is marked dead and evicted from the sample set.
    pub liveness_timeout: SimDuration,
    /// Consecutive failed direct exchanges after which a member is marked
    /// dead without waiting for the liveness timeout.
    pub failure_threshold: u32,
    /// Other-member entries per membership summary piggybacked on a regular
    /// exchange (the sender itself always rides along; the roster rotates
    /// through a window of this size, so membership overhead stays flat as
    /// the fleet grows). Anti-entropy and bootstrap exchanges always carry
    /// the full roster.
    pub membership_summary_budget: usize,
    /// Zone-aware fill budgets: regular-round fills to a same-zone partner
    /// get `intra_zone_fill_boost * max_fills_per_exchange` (bulk transfer
    /// is cheap inside a zone), while fills crossing zones are capped at
    /// `cross_zone_fill_budget` (the expensive links carry digests and only
    /// a trickle of the hottest shards; anti-entropy and bootstrap budgets
    /// are never scaled). Off by default so existing overlays keep their
    /// exact byte profile.
    pub zone_fill_budgets: bool,
    /// Same-zone fill-budget multiplier when `zone_fill_budgets` is on.
    pub intra_zone_fill_boost: usize,
    /// Cross-zone fill cap per exchange direction when `zone_fill_budgets`
    /// is on.
    pub cross_zone_fill_budget: usize,
    /// Zone-aware anti-entropy: when an anti-entropy round finds terms the
    /// frontend knows about but does not hold, it first tries to redirect
    /// one partner slot to an in-zone live member whose advertised holdings
    /// (or holdings `ShardFilter`) confirm it covers the missing shards —
    /// filling over the cheap links. The remaining sampled partners (which
    /// may be cross-zone or dead-probes) are untouched, and with no
    /// qualified in-zone candidate the round samples exactly as before, so
    /// the anti-entropy safety role is unweakened. Off by default.
    pub zone_aware_anti_entropy: bool,
    /// Batch-aware gossip: a batch window's freshly fetched shard keys are
    /// queued on the serving frontend and ride its next digest round as
    /// priority advertisements (and priority fills), even when hot-set
    /// popularity alone would not have promoted them yet — warming the
    /// rest of the fleet one round earlier. Only multi-query batch windows
    /// queue advertisements, so single-query serving keeps the exact PR 4
    /// protocol.
    pub batch_advertise: bool,
    /// Seed for peer sampling (combined with the engine seed).
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            enabled: false,
            num_frontends: 0,
            fanout: 2,
            round_interval: SimDuration::from_millis(200),
            anti_entropy_interval: SimDuration::from_secs(2),
            hot_set_size: 64,
            max_fills_per_exchange: 16,
            digest_mode: DigestMode::Delta,
            filter_bits_per_entry: 8,
            zones: 1,
            cross_zone_probability: 0.15,
            liveness_timeout: SimDuration::from_secs(2),
            failure_threshold: 3,
            membership_summary_budget: 16,
            zone_fill_budgets: false,
            intra_zone_fill_boost: 2,
            cross_zone_fill_budget: 4,
            zone_aware_anti_entropy: false,
            batch_advertise: true,
            seed: 0x6055,
        }
    }
}

impl GossipConfig {
    /// Fleet mode without gossip: `n` frontends with private caches (the
    /// cold-start baseline).
    pub fn fleet(n: usize) -> GossipConfig {
        GossipConfig {
            num_frontends: n,
            ..GossipConfig::default()
        }
    }

    /// Fleet mode with the gossip exchange on.
    pub fn enabled(n: usize) -> GossipConfig {
        GossipConfig {
            enabled: true,
            num_frontends: n,
            ..GossipConfig::default()
        }
    }

    /// Fleet mode with gossip on and frontends spread over `zones` latency
    /// zones (pair with a zoned `qb-simnet` latency model so the bias maps
    /// to real round latency).
    pub fn enabled_zoned(n: usize, zones: usize) -> GossipConfig {
        GossipConfig {
            zones,
            ..GossipConfig::enabled(n)
        }
    }

    /// The fill budget of a join's bootstrap anti-entropy exchange.
    pub fn bootstrap_fill_budget(&self) -> usize {
        self.hot_set_size.max(self.max_fills_per_exchange)
    }

    /// The fill budget of a regular round's exchange, given whether the two
    /// partners share a latency zone. With `zone_fill_budgets` off this is
    /// always `max_fills_per_exchange`.
    pub fn regular_fill_budget(&self, same_zone: bool) -> usize {
        if !self.zone_fill_budgets {
            self.max_fills_per_exchange
        } else if same_zone {
            self.max_fills_per_exchange * self.intra_zone_fill_boost
        } else {
            self.cross_zone_fill_budget.min(self.max_fills_per_exchange)
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> QbResult<()> {
        if self.num_frontends == 0 {
            if self.enabled {
                return Err(QbError::Config(
                    "gossip requires a frontend fleet (num_frontends >= 2)".into(),
                ));
            }
            return Ok(());
        }
        if !self.enabled {
            return Ok(());
        }
        if self.num_frontends < 2 {
            return Err(QbError::Config(
                "gossip needs at least 2 frontends to exchange with".into(),
            ));
        }
        if self.fanout == 0 {
            return Err(QbError::Config("gossip fanout must be positive".into()));
        }
        if self.round_interval == SimDuration::ZERO
            || self.anti_entropy_interval == SimDuration::ZERO
        {
            return Err(QbError::Config(
                "gossip round intervals must be positive".into(),
            ));
        }
        if self.hot_set_size == 0 || self.max_fills_per_exchange == 0 {
            return Err(QbError::Config(
                "gossip hot-set size and fill budget must be positive".into(),
            ));
        }
        if self.zones == 0 {
            return Err(QbError::Config("gossip zones must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.cross_zone_probability) {
            return Err(QbError::Config(
                "cross_zone_probability must be within [0, 1]".into(),
            ));
        }
        if self.liveness_timeout == SimDuration::ZERO {
            return Err(QbError::Config(
                "gossip liveness timeout must be positive".into(),
            ));
        }
        if self.failure_threshold == 0 {
            return Err(QbError::Config(
                "gossip failure threshold must be positive".into(),
            ));
        }
        if self.filter_bits_per_entry == 0 {
            return Err(QbError::Config(
                "gossip filter needs at least one bit per entry".into(),
            ));
        }
        if self.membership_summary_budget == 0 {
            return Err(QbError::Config(
                "membership summaries need a positive entry budget".into(),
            ));
        }
        if self.zone_fill_budgets
            && (self.intra_zone_fill_boost == 0 || self.cross_zone_fill_budget == 0)
        {
            return Err(QbError::Config(
                "zone fill budgets need a positive boost and cross-zone cap".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_and_valid() {
        let c = GossipConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.num_frontends, 0);
        assert_eq!(c.digest_mode, DigestMode::Delta);
        assert_eq!(c.zones, 1);
        assert!(c.validate().is_ok());
        assert!(GossipConfig::fleet(4).validate().is_ok());
        assert!(GossipConfig::enabled(4).validate().is_ok());
        let z = GossipConfig::enabled_zoned(8, 4);
        assert_eq!(z.zones, 4);
        assert!(z.validate().is_ok());
        assert_eq!(z.bootstrap_fill_budget(), z.hot_set_size);
    }

    #[test]
    fn zone_fill_budgets_scale_by_zone() {
        let mut c = GossipConfig::enabled_zoned(8, 4);
        // Off: both directions get the flat budget.
        assert_eq!(c.regular_fill_budget(true), c.max_fills_per_exchange);
        assert_eq!(c.regular_fill_budget(false), c.max_fills_per_exchange);
        c.zone_fill_budgets = true;
        assert_eq!(
            c.regular_fill_budget(true),
            c.max_fills_per_exchange * c.intra_zone_fill_boost
        );
        assert_eq!(c.regular_fill_budget(false), c.cross_zone_fill_budget);
        // The cross-zone cap never exceeds the flat budget.
        c.cross_zone_fill_budget = 1_000;
        assert_eq!(c.regular_fill_budget(false), c.max_fills_per_exchange);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = GossipConfig::enabled(4);
        c.num_frontends = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(1);
        assert!(c.validate().is_err());
        c.num_frontends = 2;
        assert!(c.validate().is_ok());

        let mut c = GossipConfig::enabled(4);
        c.fanout = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.round_interval = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.max_fills_per_exchange = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.zones = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.cross_zone_probability = 1.5;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.liveness_timeout = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.failure_threshold = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.filter_bits_per_entry = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.membership_summary_budget = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.zone_fill_budgets = true;
        assert!(c.validate().is_ok());
        c.cross_zone_fill_budget = 0;
        assert!(c.validate().is_err());
        c.cross_zone_fill_budget = 4;
        c.intra_zone_fill_boost = 0;
        assert!(c.validate().is_err());

        // Fleet without gossip tolerates degenerate gossip knobs.
        let mut c = GossipConfig::fleet(1);
        c.fanout = 0;
        assert!(c.validate().is_ok());
    }
}
