//! Gossip overlay configuration.

use qb_common::{QbError, QbResult, SimDuration};

/// Configuration of the cooperative cache-gossip overlay.
///
/// Two independent switches control the feature:
///
/// * `num_frontends > 0` turns on **fleet mode**: the engine runs that many
///   query frontends, each with its own private query-serving cache, instead
///   of the single shared cache. This is the gossip-off baseline E10
///   measures against.
/// * `enabled` turns on the **gossip exchange** between those frontends:
///   periodic digest/fill rounds plus slower anti-entropy reconciliation.
///
/// Both default to off so existing deployments keep their exact behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipConfig {
    /// Master switch for the gossip exchange between frontends.
    pub enabled: bool,
    /// Number of query frontends in the fleet (0 = fleet mode off, the
    /// engine keeps its single query-serving cache).
    pub num_frontends: usize,
    /// Gossip partners each frontend contacts per round.
    pub fanout: usize,
    /// Simulated time between gossip rounds.
    pub round_interval: SimDuration,
    /// Simulated time between anti-entropy rounds. An anti-entropy exchange
    /// digests the *entire* shard tier instead of just the hot set, so two
    /// frontends reconcile fully after a partition heals.
    pub anti_entropy_interval: SimDuration,
    /// Terms per digest in a regular (hot-set) round.
    pub hot_set_size: usize,
    /// Upper bound on shard fills sent per exchange direction, so one
    /// exchange can never turn into a bulk transfer.
    pub max_fills_per_exchange: usize,
    /// Seed for peer sampling (combined with the engine seed).
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            enabled: false,
            num_frontends: 0,
            fanout: 2,
            round_interval: SimDuration::from_millis(200),
            anti_entropy_interval: SimDuration::from_secs(2),
            hot_set_size: 64,
            max_fills_per_exchange: 16,
            seed: 0x6055,
        }
    }
}

impl GossipConfig {
    /// Fleet mode without gossip: `n` frontends with private caches (the
    /// cold-start baseline).
    pub fn fleet(n: usize) -> GossipConfig {
        GossipConfig {
            num_frontends: n,
            ..GossipConfig::default()
        }
    }

    /// Fleet mode with the gossip exchange on.
    pub fn enabled(n: usize) -> GossipConfig {
        GossipConfig {
            enabled: true,
            num_frontends: n,
            ..GossipConfig::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> QbResult<()> {
        if self.num_frontends == 0 {
            if self.enabled {
                return Err(QbError::Config(
                    "gossip requires a frontend fleet (num_frontends >= 2)".into(),
                ));
            }
            return Ok(());
        }
        if !self.enabled {
            return Ok(());
        }
        if self.num_frontends < 2 {
            return Err(QbError::Config(
                "gossip needs at least 2 frontends to exchange with".into(),
            ));
        }
        if self.fanout == 0 {
            return Err(QbError::Config("gossip fanout must be positive".into()));
        }
        if self.round_interval == SimDuration::ZERO
            || self.anti_entropy_interval == SimDuration::ZERO
        {
            return Err(QbError::Config(
                "gossip round intervals must be positive".into(),
            ));
        }
        if self.hot_set_size == 0 || self.max_fills_per_exchange == 0 {
            return Err(QbError::Config(
                "gossip hot-set size and fill budget must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_and_valid() {
        let c = GossipConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.num_frontends, 0);
        assert!(c.validate().is_ok());
        assert!(GossipConfig::fleet(4).validate().is_ok());
        assert!(GossipConfig::enabled(4).validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = GossipConfig::enabled(4);
        c.num_frontends = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(1);
        assert!(c.validate().is_err());
        c.num_frontends = 2;
        assert!(c.validate().is_ok());

        let mut c = GossipConfig::enabled(4);
        c.fanout = 0;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.round_interval = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = GossipConfig::enabled(4);
        c.max_fills_per_exchange = 0;
        assert!(c.validate().is_err());

        // Fleet without gossip tolerates degenerate gossip knobs.
        let mut c = GossipConfig::fleet(1);
        c.fanout = 0;
        assert!(c.validate().is_ok());
    }
}
