//! `qb-gossip`: a cooperative cache-gossip overlay so one bee's shard fetch
//! warms the whole frontend fleet.
//!
//! PR 1's query-serving cache removed repeat-query cost for a *single*
//! frontend, but every frontend still cold-started alone, re-fetching the
//! same Zipf head from the DHT. This crate adds the one-hop-further
//! mitigation real deployments use (SwarmSearch-style result sharing, IPFS
//! provider-record gossip): frontends periodically exchange digests of
//! their hottest cached term shards and push/pull the shards the other side
//! lacks, so a shard fetched from the DHT by one frontend lands in its
//! neighbours' shard tiers before they ever query it.
//!
//! Since PR 4 the overlay is built for real DWeb deployments rather than a
//! static LAN fleet:
//!
//! * **Churn-aware membership** ([`membership`]) — frontends join by
//!   bootstrapping their cache through one anti-entropy exchange with a
//!   live neighbour (warming from the fleet instead of the DHT), leave
//!   gracefully or crash; liveness flows through gossiped heartbeats, dead
//!   members are evicted from the sample set, and rejoining members are
//!   revived the moment a fresher heartbeat arrives.
//! * **Zone-aware peer sampling** — each frontend carries a latency-zone
//!   label (matching `qb-simnet`'s zone assignment); partner choice prefers
//!   the own zone and escapes cross-zone with a configurable probability,
//!   cutting round latency while cross-zone links keep the fleet-wide
//!   epidemic converging.
//! * **Compressed digests** ([`digest`], [`filter`]) — regular rounds ship
//!   *delta* digests against the last exchange per peer plus a compact
//!   bloom-style [`ShardFilter`] over current holdings, with the periodic
//!   full-digest anti-entropy round as the exact safety net; steady-state
//!   digest bytes drop an order of magnitude (asserted in E12).
//!
//! The pieces:
//!
//! * [`GossipConfig`] — fleet size, fanout, round/anti-entropy intervals,
//!   hot-set size and fill budget, digest mode, zones and liveness knobs.
//!   Default-off.
//! * [`Digest`] / [`VersionVector`] / [`ShardFilter`] — the metadata
//!   protocol. Every frontend tracks the highest shard version it has
//!   observed per term; an incoming fill older than that is rejected, so a
//!   stale shard is never accepted over fresher knowledge.
//! * [`MembershipView`] / [`MembershipSummary`] — per-frontend fleet views,
//!   heartbeats and the zone-biased partner sampler.
//! * [`GossipFleet`] / [`Frontend`] — the fleet and the exchange protocol.
//!   All traffic flows through [`qb_simnet::SimNet`] and is charged to its
//!   `NetStats`; partitions fail exchanges, and anti-entropy reconciles
//!   fleets after partitions heal.
//! * [`GossipStats`] — rounds, exchange failures, digest/fill/membership
//!   bytes, the accept/stale/duplicate breakdown and the churn counters,
//!   for the E10/E12 overhead accounting.
//! * Warm-start persistence — [`GossipFleet::export_hot_set`] /
//!   [`GossipFleet::import_hot_set`] snapshot a frontend's hottest shards
//!   so a restarted frontend pre-fills from its last session instead of
//!   cold-starting against the DHT.
//!
//! Correctness rests on three rails shared with `qb-cache`: read-time
//! version checks (the engine validates every cached shard against the
//! current version before serving), publish-path invalidation (observing
//! frontends purge on reindex), and TTLs (gossip fills inherit the
//! sender's adaptive TTL, tightened by the receiver's own estimate).

pub mod config;
pub mod digest;
pub mod filter;
pub mod fleet;
pub mod membership;
pub mod stats;

pub use config::{DigestMode, GossipConfig};
pub use digest::{apply_delta, delta_entries, needs_fill, Digest, VersionVector};
pub use filter::ShardFilter;
pub use fleet::{Frontend, GossipFleet, SegmentBootstrapReport};
pub use membership::{MemberInfo, MembershipSummary, MembershipView};
pub use stats::GossipStats;
