//! `qb-gossip`: a cooperative cache-gossip overlay so one bee's shard fetch
//! warms the whole frontend fleet.
//!
//! PR 1's query-serving cache removed repeat-query cost for a *single*
//! frontend, but every frontend still cold-started alone, re-fetching the
//! same Zipf head from the DHT. This crate adds the one-hop-further
//! mitigation real deployments use (SwarmSearch-style result sharing, IPFS
//! provider-record gossip): frontends periodically exchange digests of
//! their hottest cached term shards and push/pull the shards the other side
//! lacks, so a shard fetched from the DHT by one frontend lands in its
//! neighbours' shard tiers before they ever query it.
//!
//! The pieces:
//!
//! * [`GossipConfig`] — fleet size, fanout, round/anti-entropy intervals,
//!   hot-set size and fill budget. Default-off.
//! * [`Digest`] / [`VersionVector`] — the metadata protocol. Every frontend
//!   tracks the highest shard version it has observed per term; an incoming
//!   fill older than that is rejected, so a stale shard is never accepted
//!   over a fresher one regardless of gossip routing.
//! * [`GossipFleet`] / [`Frontend`] — the fleet of per-frontend caches and
//!   the exchange protocol. All traffic flows through [`qb_simnet::SimNet`]
//!   and is charged to its `NetStats`; partitions fail exchanges, and
//!   periodic anti-entropy rounds (full-digest swaps) reconcile fleets
//!   after a partition heals.
//! * [`GossipStats`] — rounds, exchange failures, digest/fill bytes and the
//!   accept/stale/duplicate breakdown, for the E10 overhead accounting.
//! * Warm-start persistence — [`GossipFleet::export_hot_set`] /
//!   [`GossipFleet::import_hot_set`] snapshot a frontend's hottest shards
//!   so a restarted frontend pre-fills from its last session instead of
//!   cold-starting against the DHT.
//!
//! Correctness rests on three rails shared with `qb-cache`: read-time
//! version checks (the engine validates every cached shard against the
//! current version before serving), publish-path invalidation (observing
//! frontends purge on reindex), and TTLs (gossip fills inherit the
//! sender's adaptive TTL, tightened by the receiver's own estimate).

pub mod config;
pub mod digest;
pub mod fleet;
pub mod stats;

pub use config::GossipConfig;
pub use digest::{Digest, VersionVector};
pub use fleet::{Frontend, GossipFleet};
pub use stats::GossipStats;
