//! A compact membership filter over a cache's `(term, version)` holdings.
//!
//! Delta digests only ship the hot-set entries that *changed* since the last
//! exchange with a peer; the receiver reconstructs the sender's holdings
//! from its accumulated per-peer view. That reconstruction is exact for
//! everything the sender ever advertised — but it cannot see *evictions*:
//! a term the sender dropped under cache pressure would stay in the
//! receiver's view forever and wrongly suppress future fills. The filter
//! closes that gap: every compressed digest carries a bloom-style summary
//! of the sender's *current* shard holdings, and an accumulated belief only
//! suppresses a fill while the filter still confirms it.
//!
//! The decision rule is deliberately asymmetric in what an error can cost:
//!
//! * a filter **false negative is impossible** (every inserted key always
//!   tests positive), so a fill is never triggered for an entry the peer
//!   provably advertised and still holds — no wasted fill from the filter;
//! * a filter **false positive** can only keep a stale belief alive for an
//!   entry the peer *evicted*; the fill is retried once the periodic
//!   full-digest anti-entropy round rebuilds the exact view. Beliefs
//!   themselves come from explicit advertisements, never from the filter,
//!   so the filter alone can never invent a "peer has it" outcome.

use qb_common::Hash256;

/// Number of hash probes per key. Three probes at the default 8 bits per
/// entry give a ~3% false-positive rate, which only delays (never loses)
/// fills for concurrently evicted entries.
const PROBES: usize = 3;

/// A bloom-style filter over `(term, version)` pairs, built on the
/// workspace's [`Hash256`] hashing (one digest per key, split into probe
/// indexes — no external hash crates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFilter {
    bits: Vec<u8>,
    entries: usize,
}

impl ShardFilter {
    /// Build a filter sized at `bits_per_entry` bits per entry (minimum 64
    /// bits total, rounded up to whole bytes) over the given holdings.
    pub fn build(holdings: &[(String, u64)], bits_per_entry: usize) -> ShardFilter {
        let bits = (holdings.len() * bits_per_entry.max(1)).max(64);
        let mut filter = ShardFilter {
            bits: vec![0u8; bits.div_ceil(8)],
            entries: holdings.len(),
        };
        for (term, version) in holdings {
            filter.insert(term, *version);
        }
        filter
    }

    /// An empty filter (answers `false` for every key).
    pub fn empty() -> ShardFilter {
        ShardFilter {
            bits: vec![0u8; 8],
            entries: 0,
        }
    }

    fn probe_positions(&self, term: &str, version: u64) -> [usize; PROBES] {
        let digest =
            Hash256::digest_parts(&[b"qb-gossip/filter", term.as_bytes(), &version.to_be_bytes()]);
        let bytes = digest.as_bytes();
        let nbits = self.bits.len() * 8;
        let mut positions = [0usize; PROBES];
        for (i, pos) in positions.iter_mut().enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            *pos = (u64::from_be_bytes(word) % nbits as u64) as usize;
        }
        positions
    }

    fn insert(&mut self, term: &str, version: u64) {
        for pos in self.probe_positions(term, version) {
            self.bits[pos / 8] |= 1 << (pos % 8);
        }
    }

    /// Does the filter (possibly) contain `(term, version)`? `true` is
    /// approximate ("maybe holds"), `false` is exact ("definitely does not
    /// hold") — inserted keys never test negative.
    pub fn contains(&self, term: &str, version: u64) -> bool {
        self.probe_positions(term, version)
            .into_iter()
            .all(|pos| self.bits[pos / 8] & (1 << (pos % 8)) != 0)
    }

    /// Number of entries the filter was built over.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when built over no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Bytes this filter occupies on the wire (bit array + a small header
    /// carrying the bit count).
    pub fn wire_bytes(&self) -> usize {
        4 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holdings(n: usize) -> Vec<(String, u64)> {
        (0..n)
            .map(|i| (format!("term{i}"), (i % 9 + 1) as u64))
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let h = holdings(200);
        let f = ShardFilter::build(&h, 8);
        for (t, v) in &h {
            assert!(
                f.contains(t, *v),
                "inserted key ({t}, {v}) must test positive"
            );
        }
    }

    #[test]
    fn version_is_part_of_the_key() {
        let f = ShardFilter::build(&[("honey".into(), 3)], 8);
        assert!(f.contains("honey", 3));
        // A different version of the same term is a different key; it may
        // collide in principle but not for this tiny filter.
        assert!(!f.contains("honey", 4));
        assert!(!f.contains("nectar", 3));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = ShardFilter::empty();
        assert!(f.is_empty());
        assert!(!f.contains("anything", 1));
        assert!(f.wire_bytes() >= 8);
    }

    #[test]
    fn false_positive_rate_is_low_at_default_sizing() {
        let h = holdings(512);
        let f = ShardFilter::build(&h, 8);
        let mut false_positives = 0;
        let trials = 2_000;
        for i in 0..trials {
            if f.contains(&format!("absent{i}"), 1) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / trials as f64;
        assert!(rate < 0.08, "false-positive rate too high: {rate}");
    }

    #[test]
    fn wire_bytes_scale_with_entries() {
        let small = ShardFilter::build(&holdings(8), 8);
        let large = ShardFilter::build(&holdings(256), 8);
        assert!(large.wire_bytes() > small.wire_bytes());
        // ~1 byte per entry at the default sizing: an order of magnitude
        // under the ~17 bytes a full digest entry costs.
        assert_eq!(large.wire_bytes(), 4 + 256);
    }
}
