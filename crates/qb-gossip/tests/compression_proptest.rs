//! Property tests for the compressed-digest protocol: a delta digest plus
//! the holdings filter must reconstruct exactly the fill decisions a full
//! digest would make, and the filter alone must never produce a "peer has
//! it" outcome that suppresses a needed fill.

use proptest::prelude::*;
use qb_gossip::{apply_delta, delta_entries, needs_fill, ShardFilter};
use std::collections::{BTreeMap, HashMap};

/// `(term, version)` holdings out of a small shared term pool, so sender
/// and receiver states overlap, diverge and re-converge across cases.
fn holdings_vec(map: &BTreeMap<u8, u64>) -> Vec<(String, u64)> {
    map.iter().map(|(t, v)| (format!("t{t}"), *v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two successive exchanges: the sender advertises state `s1`, evolves
    /// to `s2` (bumps, drops, new terms) and ships only the delta. The
    /// receiver's accumulated view after applying the delta must agree
    /// with a full `s2` digest on every term `s2` advertises.
    #[test]
    fn delta_plus_prior_view_reconstructs_the_full_digest(
        s1 in proptest::collection::btree_map(0u8..20, 1u64..6, 0..16),
        bumps in proptest::collection::btree_map(0u8..20, 1u64..6, 0..16),
    ) {
        // s2 = s1 with some versions bumped and some brand-new terms.
        let mut s2 = s1.clone();
        for (t, d) in &bumps {
            let slot = s2.entry(*t).or_insert(0);
            *slot += d;
        }
        let hot1 = holdings_vec(&s1);
        let hot2 = holdings_vec(&s2);

        // Exchange 1: nothing advertised yet, the delta is the full state.
        let mut advertised: HashMap<String, u64> = HashMap::new();
        let delta1 = delta_entries(&hot1, &advertised);
        prop_assert_eq!(&delta1, &hot1);
        let mut view: HashMap<String, u64> = HashMap::new();
        apply_delta(&mut view, &delta1);
        advertised.extend(delta1.iter().cloned());

        // Exchange 2: only the changed entries ride the delta...
        let delta2 = delta_entries(&hot2, &advertised);
        for (term, version) in &delta2 {
            prop_assert!(
                advertised.get(term) != Some(version),
                "unchanged entry '{term}' must not re-enter the delta"
            );
        }
        // ...yet the receiver reconstructs the full second digest.
        apply_delta(&mut view, &delta2);
        for (term, version) in &hot2 {
            prop_assert_eq!(
                view.get(term), Some(version),
                "reconstructed view must equal the full digest for '{}'", term
            );
        }
    }

    /// Fill decisions: with the receiver's advertisements reflecting its
    /// actual holdings (the filter's no-false-negative guarantee covers
    /// them), the delta protocol's `needs_fill` must agree with the
    /// full-digest decision on every sender entry — same fills, and never
    /// a suppressed fill the receiver actually needs.
    #[test]
    fn compressed_fill_decisions_match_full_digest_decisions(
        sender in proptest::collection::btree_map(0u8..20, 1u64..6, 0..16),
        receiver in proptest::collection::btree_map(0u8..20, 1u64..6, 0..16),
        bits in 4usize..12,
    ) {
        let receiver_holdings = holdings_vec(&receiver);
        let filter = ShardFilter::build(&receiver_holdings, bits);
        // The receiver advertised exactly what it holds.
        let believed: HashMap<String, u64> = receiver_holdings.iter().cloned().collect();
        for (term, version) in holdings_vec(&sender) {
            let full_decision = believed.get(&term).copied().is_none_or(|b| b < version);
            let compressed_decision =
                needs_fill(&term, version, believed.get(&term).copied(), &filter);
            prop_assert_eq!(
                compressed_decision, full_decision,
                "decision mismatch for '{}'@{}", term, version
            );
            // The hard guarantee behind "0 stale / no lost fills": whenever
            // the receiver genuinely lacks the version, the fill happens.
            if believed.get(&term).copied().unwrap_or(0) < version {
                prop_assert!(compressed_decision, "needed fill for '{}' suppressed", term);
            }
        }
    }

    /// The filter alone can never suppress: without an explicit
    /// advertisement (`believed = None`) every fill is sent, no matter
    /// what the filter claims to contain.
    #[test]
    fn the_filter_alone_never_claims_peer_has_it(
        noise in proptest::collection::btree_map(0u8..20, 1u64..6, 0..16),
        term_id in 0u8..20,
        version in 1u64..6,
    ) {
        let filter = ShardFilter::build(&holdings_vec(&noise), 8);
        prop_assert!(needs_fill(&format!("t{term_id}"), version, None, &filter));
    }

    /// Evictions self-heal: once an advertised entry leaves the receiver's
    /// holdings, the rebuilt filter goes definitely-negative for it unless
    /// a bloom collision delays the refill — and a definite negative always
    /// reopens the fill, stale advertisement or not.
    #[test]
    fn a_definite_negative_always_reopens_the_fill(
        kept in proptest::collection::btree_map(0u8..10, 1u64..6, 0..8),
        evicted_id in 10u8..20,
        version in 1u64..6,
    ) {
        let term = format!("t{evicted_id}");
        // The receiver once advertised `term`@version but evicted it; the
        // fresh filter only covers what it still holds.
        let filter = ShardFilter::build(&holdings_vec(&kept), 8);
        if !filter.contains(&term, version) {
            prop_assert!(
                needs_fill(&term, version, Some(version), &filter),
                "stale advertisement must not survive a definite negative"
            );
        }
    }
}
