//! Trace replay against a QueenBee engine.
//!
//! [`to_requests`] turns an [`ArrivalTrace`] into the
//! [`TimedRequest`] schedule [`QueenBee::serve_open_loop`] consumes —
//! spreading arrivals across the frontend fleet by hashing the arrival
//! sequence number, and marking a deterministic fraction of queries
//! `Fresh` (the rest tolerate cached results, so the admission layer has a
//! degrade path *and* a population that exercises the cache). [`replay`]
//! is the one-call version: generate requests, serve them, return the
//! [`LoadReport`].
//!
//! [`replay_traced`] runs the same replay with the engine's structured
//! tracer switched on and hands back the recorded [`qb_trace::Trace`]
//! next to the report: every admitted query becomes a `query` span tree
//! (`queue_wait` / `fetch` / `score` children) and every shed arrival a
//! `load.shed` marker, ready for [`qb_trace::critical_path`] /
//! [`qb_trace::attribution`] analysis.

use crate::trace::ArrivalTrace;
use qb_common::{DetRng, QbResult};
use qb_queenbee::{Freshness, LoadReport, QueenBee, RoutingPolicy, SearchRequest, TimedRequest};

/// How a trace is turned into engine requests.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Seed for the per-request freshness coin flips.
    pub seed: u64,
    /// Fraction of requests demanding `Fresh` results (bypassing the result
    /// cache); the rest are `CacheOk`.
    pub fresh_fraction: f64,
    /// Results requested per query.
    pub top_k: usize,
    /// Route via the seed's [`RoutingPolicy::RingSuccessor`] (modulo + ring
    /// walk) instead of the default rendezvous [`RoutingPolicy::HashPeer`].
    /// Only useful for failover-geometry comparisons (E12c/E17): the ring
    /// walk dumps a crashed frontend's whole keyspace on one successor.
    pub ring_successor_routing: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            seed: 0x5E7,
            fresh_fraction: 0.3,
            top_k: 5,
            ring_successor_routing: false,
        }
    }
}

/// Turn a trace into timed requests, round-robining arrivals over the
/// frontend fleet via [`RoutingPolicy::HashPeer`] on the arrival sequence
/// number.
pub fn to_requests(trace: &ArrivalTrace, config: &ReplayConfig) -> Vec<TimedRequest> {
    let mut rng = DetRng::new(config.seed);
    trace
        .arrivals
        .iter()
        .enumerate()
        .map(|(seq, arrival)| {
            let freshness = if rng.gen_bool(config.fresh_fraction.clamp(0.0, 1.0)) {
                Freshness::Fresh
            } else {
                Freshness::CacheOk
            };
            let routing = if config.ring_successor_routing {
                RoutingPolicy::RingSuccessor(seq as u64)
            } else {
                RoutingPolicy::HashPeer(seq as u64)
            };
            let request = SearchRequest::new(arrival.query.clone())
                .top_k(config.top_k)
                .route(routing)
                .freshness(freshness);
            TimedRequest::new(arrival.offset, request)
        })
        .collect()
}

/// Replay a trace against an engine and return its [`LoadReport`].
///
/// The engine must have admission control enabled
/// ([`qb_queenbee::AdmissionConfig`]); arrival offsets are interpreted
/// relative to the engine's current simulated instant.
pub fn replay(
    engine: &mut QueenBee,
    trace: &ArrivalTrace,
    config: &ReplayConfig,
) -> QbResult<LoadReport> {
    engine.serve_open_loop(to_requests(trace, config))
}

/// [`replay`] with the engine's structured tracer on for the duration of
/// the run: returns the [`LoadReport`] together with the span trees the
/// replay recorded (one `query` root per completed query, plus
/// `load.shed` / `load.degrade` markers). The tracer is restored to its
/// previous state afterwards, and the report is byte-identical to an
/// untraced [`replay`] of the same trace — tracing never perturbs the
/// simulation.
pub fn replay_traced(
    engine: &mut QueenBee,
    trace: &ArrivalTrace,
    config: &ReplayConfig,
) -> QbResult<(LoadReport, qb_trace::Trace)> {
    let was_on = engine.tracing_enabled();
    engine.set_tracing(true);
    let result = engine.serve_open_loop(to_requests(trace, config));
    let spans = engine.take_trace();
    engine.set_tracing(was_on);
    let report = result?;
    Ok((report, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use qb_common::DetRng;
    use qb_workload::{CorpusConfig, CorpusGenerator};

    fn trace() -> ArrivalTrace {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny()).generate(&mut DetRng::new(7));
        ArrivalTrace::generate(&corpus, &TraceConfig::default())
    }

    #[test]
    fn requests_preserve_schedule_and_spread_frontends() {
        let t = trace();
        let requests = to_requests(&t, &ReplayConfig::default());
        assert_eq!(requests.len(), t.len());
        for (seq, (req, arrival)) in requests.iter().zip(&t.arrivals).enumerate() {
            assert_eq!(req.offset, arrival.offset);
            assert_eq!(req.request.query, arrival.query);
            assert_eq!(req.request.routing, RoutingPolicy::HashPeer(seq as u64));
        }
    }

    #[test]
    fn fresh_fraction_is_respected_and_deterministic() {
        let t = trace();
        let cfg = ReplayConfig {
            fresh_fraction: 0.5,
            ..ReplayConfig::default()
        };
        let a = to_requests(&t, &cfg);
        let b = to_requests(&t, &cfg);
        assert_eq!(a, b);
        let fresh = a
            .iter()
            .filter(|r| r.request.freshness == Freshness::Fresh)
            .count();
        let frac = fresh as f64 / a.len() as f64;
        assert!((0.35..=0.65).contains(&frac), "fresh fraction {frac}");
        let none = to_requests(
            &t,
            &ReplayConfig {
                fresh_fraction: 0.0,
                ..ReplayConfig::default()
            },
        );
        assert!(none
            .iter()
            .all(|r| r.request.freshness == Freshness::CacheOk));
    }
}
