//! qb-load: the open-loop workload harness.
//!
//! The closed-loop drivers elsewhere in the workspace (batch benchmarks,
//! `search_pipelined` experiments) issue the next query only after the
//! previous one finishes — so the offered load adapts to the system and
//! saturation is invisible. This crate drives the engine **open-loop**:
//! queries arrive on their own clock, generated up front as a timestamped
//! [`ArrivalTrace`], and the engine must admit, degrade
//! (`Fresh` → `CacheOk`) or shed each one at its arrival instant.
//!
//! * [`trace`] — non-homogeneous Poisson arrivals via thinning on
//!   [`qb_common::DetRng`], with constant / diurnal-sinusoid /
//!   flash-crowd / ramp rate shapes and Zipf query popularity with
//!   optional drift. Same [`TraceConfig`] → byte-identical trace.
//! * [`mod@replay`] — maps a trace onto
//!   [`qb_queenbee::QueenBee::serve_open_loop`], spreading arrivals over
//!   the frontend fleet and returning the engine's
//!   [`qb_queenbee::LoadReport`] (sojourn percentiles, goodput, shed and
//!   degrade counts).
//!
//! See `examples/open_loop.rs` for a flash-crowd walkthrough and
//! experiment E14 in `qb-bench` for the saturation ladder this harness
//! exists to measure.
//!
//! # Quickstart: generate a trace, replay it, read the report
//!
//! ```
//! use qb_chain::AccountId;
//! use qb_common::{DetRng, SimDuration};
//! use qb_load::{replay, ArrivalTrace, ReplayConfig, TraceConfig};
//! use qb_queenbee::{AdmissionConfig, QueenBee, QueenBeeConfig};
//! use qb_workload::{CorpusConfig, CorpusGenerator};
//!
//! // 1. A fleet with the admission controller switched on (it ships
//! //    disabled; `serve_open_loop` refuses to run without it).
//! let mut config = QueenBeeConfig::small();
//! config.admission = AdmissionConfig::enabled();
//! let storage_peers = config.num_peers - config.num_bees;
//! let mut qb = QueenBee::new(config).unwrap();
//! let corpus = CorpusGenerator::new(CorpusConfig {
//!     num_pages: 8,
//!     ..CorpusConfig::default()
//! })
//! .generate(&mut DetRng::new(7));
//! for (i, page) in corpus.pages.iter().enumerate() {
//!     let peer = (i % storage_peers) as u64;
//!     qb.publish(peer, AccountId(corpus.creators[i]), page).unwrap();
//! }
//! qb.seal();
//! qb.process_publish_events().unwrap();
//!
//! // 2. One second of Poisson arrivals at 20 q/s, Zipf-popular queries.
//! let trace = ArrivalTrace::generate(
//!     &corpus,
//!     &TraceConfig {
//!         duration: SimDuration::from_secs(1),
//!         base_qps: 20.0,
//!         ..TraceConfig::default()
//!     },
//! );
//!
//! // 3. Replay it open-loop and read the latency/goodput accounting.
//! let report = replay(&mut qb, &trace, &ReplayConfig::default()).unwrap();
//! assert_eq!(report.offered, trace.len() as u64);
//! assert_eq!(report.completed + report.shed, report.offered);
//! println!(
//!     "p99 sojourn {} at {:.0} q/s goodput",
//!     report.p99(),
//!     report.goodput_qps()
//! );
//! ```

pub mod replay;
pub mod trace;

pub use replay::{replay, replay_traced, to_requests, ReplayConfig};
pub use trace::{Arrival, ArrivalTrace, RateShape, TraceConfig};
