//! Arrival-trace generation.
//!
//! An [`ArrivalTrace`] is a time-ordered list of `(offset, query)` pairs: the
//! *open-loop* schedule on which queries hit the fleet, independent of how
//! fast the fleet answers them. Three ingredients, all deterministic from
//! the seed in [`TraceConfig`]:
//!
//! * **Arrival process** — a non-homogeneous Poisson process realized by
//!   *thinning*: candidate arrivals are drawn at the shape's peak rate with
//!   exponential inter-arrival gaps, then each candidate survives with
//!   probability `rate(t) / peak_rate`. The surviving points are exactly a
//!   Poisson process with the time-varying intensity [`RateShape::rate_at`].
//! * **Rate shape** — constant, diurnal sinusoid, flash-crowd spike or
//!   linear ramp ([`RateShape`]).
//! * **Popularity** — each arrival picks its query from a pool of distinct
//!   queries through a Zipf sampler, with optional *drift*: every
//!   `drift_interval` the popularity ranking rotates by `drift_step`
//!   positions, so yesterday's hot queries cool off.

use qb_common::{DetRng, SimDuration};
use qb_workload::{Corpus, QueryWorkload, ZipfSampler};

/// Time-varying arrival-rate shape, as a multiplier on the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateShape {
    /// Flat `base_qps` for the whole trace.
    Constant,
    /// Sinusoidal day/night cycle: `base * (1 + amplitude * sin(2πt/period))`.
    /// `amplitude` must sit in `[0, 1)` so the rate stays positive.
    Diurnal {
        /// Length of one full cycle.
        period: SimDuration,
        /// Relative swing around the base rate, in `[0, 1)`.
        amplitude: f64,
    },
    /// Flat base rate with a burst of `multiplier * base` inside
    /// `[at, at + duration)` — the "front page of the fediverse" moment.
    FlashCrowd {
        /// Burst start offset.
        at: SimDuration,
        /// Burst length.
        duration: SimDuration,
        /// Rate multiplier during the burst (≥ 1).
        multiplier: f64,
    },
    /// Linear ramp from `base` at the trace start to `to * base` at
    /// `over`, flat afterwards. Used by E14's saturation ladder.
    Ramp {
        /// Time to reach the final rate.
        over: SimDuration,
        /// Final rate as a multiple of the base (≥ 0).
        to: f64,
    },
}

impl RateShape {
    /// Instantaneous rate multiplier at `offset` from the trace start.
    pub fn multiplier_at(&self, offset: SimDuration) -> f64 {
        match *self {
            RateShape::Constant => 1.0,
            RateShape::Diurnal { period, amplitude } => {
                let phase = offset.as_micros() as f64 / period.as_micros().max(1) as f64;
                1.0 + amplitude * (std::f64::consts::TAU * phase).sin()
            }
            RateShape::FlashCrowd {
                at,
                duration,
                multiplier,
            } => {
                if offset >= at && offset.as_micros() < at.as_micros() + duration.as_micros() {
                    multiplier
                } else {
                    1.0
                }
            }
            RateShape::Ramp { over, to } => {
                let f = (offset.as_micros() as f64 / over.as_micros().max(1) as f64).min(1.0);
                1.0 + (to - 1.0) * f
            }
        }
    }

    /// Instantaneous arrival rate (queries/sec) at `offset`.
    pub fn rate_at(&self, base_qps: f64, offset: SimDuration) -> f64 {
        base_qps * self.multiplier_at(offset)
    }

    /// The shape's peak multiplier — the thinning envelope.
    pub fn peak_multiplier(&self) -> f64 {
        match *self {
            RateShape::Constant => 1.0,
            RateShape::Diurnal { amplitude, .. } => 1.0 + amplitude,
            RateShape::FlashCrowd { multiplier, .. } => multiplier.max(1.0),
            RateShape::Ramp { to, .. } => to.max(1.0),
        }
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            RateShape::Constant => Ok(()),
            RateShape::Diurnal { period, amplitude } => {
                if period == SimDuration::ZERO {
                    return Err("diurnal period must be positive".into());
                }
                if !(0.0..1.0).contains(&amplitude) {
                    return Err("diurnal amplitude must be in [0, 1)".into());
                }
                Ok(())
            }
            RateShape::FlashCrowd {
                duration,
                multiplier,
                ..
            } => {
                if duration == SimDuration::ZERO {
                    return Err("flash-crowd duration must be positive".into());
                }
                if multiplier < 1.0 {
                    return Err("flash-crowd multiplier must be >= 1".into());
                }
                Ok(())
            }
            RateShape::Ramp { over, to } => {
                if over == SimDuration::ZERO {
                    return Err("ramp duration must be positive".into());
                }
                if to < 0.0 {
                    return Err("ramp target must be >= 0".into());
                }
                Ok(())
            }
        }
    }
}

/// Everything that determines a trace; same config → byte-identical trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Seed for every stochastic decision (arrival gaps, thinning,
    /// popularity draws).
    pub seed: u64,
    /// Trace length; no arrival lands at or past this offset.
    pub duration: SimDuration,
    /// Base arrival rate in queries/sec; the shape multiplies this.
    pub base_qps: f64,
    /// Rate shape over the trace.
    pub shape: RateShape,
    /// Number of distinct queries in the popularity pool.
    pub pool_size: usize,
    /// Zipf skew of query popularity over the pool (0 = uniform).
    pub zipf_s: f64,
    /// Rotate the popularity ranking every this often;
    /// [`SimDuration::ZERO`] disables drift.
    pub drift_interval: SimDuration,
    /// Ranking positions rotated per drift step.
    pub drift_step: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0x10AD,
            duration: SimDuration::from_secs(10),
            base_qps: 50.0,
            shape: RateShape::Constant,
            pool_size: 128,
            zipf_s: 1.0,
            drift_interval: SimDuration::ZERO,
            drift_step: 1,
        }
    }
}

impl TraceConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration == SimDuration::ZERO {
            return Err("trace duration must be positive".into());
        }
        if self.base_qps <= 0.0 || !self.base_qps.is_finite() {
            return Err("base_qps must be positive and finite".into());
        }
        if self.pool_size == 0 {
            return Err("pool_size must be positive".into());
        }
        if self.zipf_s < 0.0 {
            return Err("zipf_s must be >= 0".into());
        }
        if self.drift_interval > SimDuration::ZERO && self.drift_step == 0 {
            return Err("drift_step must be positive when drift is enabled".into());
        }
        self.shape.validate()
    }
}

/// One arrival: a query hitting the fleet `offset` after the trace start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from the trace start.
    pub offset: SimDuration,
    /// The query string.
    pub query: String,
}

/// A generated open-loop trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Time-ordered arrivals.
    pub arrivals: Vec<Arrival>,
    /// The distinct-query pool the arrivals draw from.
    pub pool: Vec<String>,
    /// The config that produced this trace.
    pub config: TraceConfig,
}

impl ArrivalTrace {
    /// Generate a trace against a corpus. The query pool comes from
    /// [`QueryWorkload::generate_pool`] so popularity skew is not diluted by
    /// in-pool duplicates.
    ///
    /// # Panics
    /// Panics if the config fails [`TraceConfig::validate`] or the corpus
    /// yields an empty pool.
    pub fn generate(corpus: &Corpus, config: &TraceConfig) -> ArrivalTrace {
        config.validate().expect("invalid TraceConfig");
        let mut rng = DetRng::new(config.seed);
        let workload = QueryWorkload::new(corpus);
        let pool = workload.generate_pool(corpus, &mut rng.fork(1), config.pool_size);
        assert!(!pool.is_empty(), "corpus yielded an empty query pool");
        let zipf = ZipfSampler::new(pool.len(), config.zipf_s);
        let mut arrival_rng = rng.fork(2);
        let mut pick_rng = rng.fork(3);

        // Thinning: candidates at the peak rate, kept with p = rate/peak.
        let peak_qps = config.base_qps * config.shape.peak_multiplier();
        let mean_gap_us = 1_000_000.0 / peak_qps;
        let mut arrivals = Vec::new();
        let mut t_us = 0.0f64;
        loop {
            t_us += arrival_rng.gen_exp(mean_gap_us).max(0.0);
            let offset = SimDuration::from_micros(t_us as u64);
            if offset >= config.duration {
                break;
            }
            let keep = config.shape.rate_at(config.base_qps, offset) / peak_qps;
            if !arrival_rng.gen_bool(keep.clamp(0.0, 1.0)) {
                continue;
            }
            let rank = zipf.sample(&mut pick_rng);
            let idx = if config.drift_interval > SimDuration::ZERO {
                let steps =
                    (offset.as_micros() / config.drift_interval.as_micros().max(1)) as usize;
                (rank + steps * config.drift_step) % pool.len()
            } else {
                rank
            };
            arrivals.push(Arrival {
                offset,
                query: pool[idx].clone(),
            });
        }

        ArrivalTrace {
            arrivals,
            pool,
            config: config.clone(),
        }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Mean offered rate over the trace duration, in queries/sec.
    pub fn offered_qps(&self) -> f64 {
        self.arrivals.len() as f64 / self.config.duration.as_secs_f64()
    }

    /// Arrival count inside `[from, to)` — burst/trough inspection.
    pub fn arrivals_between(&self, from: SimDuration, to: SimDuration) -> usize {
        self.arrivals
            .iter()
            .filter(|a| a.offset >= from && a.offset < to)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_workload::{CorpusConfig, CorpusGenerator};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig::tiny()).generate(&mut DetRng::new(7))
    }

    #[test]
    fn same_config_same_trace() {
        let c = corpus();
        let cfg = TraceConfig::default();
        let a = ArrivalTrace::generate(&c, &cfg);
        let b = ArrivalTrace::generate(&c, &cfg);
        assert_eq!(a, b);
        let different = ArrivalTrace::generate(
            &c,
            &TraceConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(a.arrivals, different.arrivals);
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let c = corpus();
        let trace = ArrivalTrace::generate(&c, &TraceConfig::default());
        assert!(!trace.is_empty());
        for pair in trace.arrivals.windows(2) {
            assert!(pair[0].offset <= pair[1].offset);
        }
        assert!(trace.arrivals.last().unwrap().offset < trace.config.duration);
    }

    #[test]
    fn constant_rate_is_close_to_base() {
        let c = corpus();
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(40),
            base_qps: 100.0,
            ..TraceConfig::default()
        };
        let trace = ArrivalTrace::generate(&c, &cfg);
        // 4000 expected arrivals; ±10% comfortably covers Poisson noise.
        let qps = trace.offered_qps();
        assert!((90.0..=110.0).contains(&qps), "offered {qps} q/s");
    }

    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let c = corpus();
        let at = SimDuration::from_secs(4);
        let duration = SimDuration::from_secs(2);
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(10),
            base_qps: 50.0,
            shape: RateShape::FlashCrowd {
                at,
                duration,
                multiplier: 8.0,
            },
            ..TraceConfig::default()
        };
        let trace = ArrivalTrace::generate(&c, &cfg);
        let in_burst = trace.arrivals_between(at, SimDuration::from_secs(6));
        let before = trace.arrivals_between(SimDuration::ZERO, SimDuration::from_secs(2));
        // Burst window should see ~8x the arrivals of an equal quiet window.
        assert!(
            in_burst > before * 4,
            "burst {in_burst} vs quiet {before} arrivals"
        );
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let c = corpus();
        let period = SimDuration::from_secs(8);
        let cfg = TraceConfig {
            duration: period,
            base_qps: 200.0,
            shape: RateShape::Diurnal {
                period,
                amplitude: 0.9,
            },
            ..TraceConfig::default()
        };
        let trace = ArrivalTrace::generate(&c, &cfg);
        // sin peaks in the first half-period, troughs in the second.
        let peak_half = trace.arrivals_between(SimDuration::ZERO, SimDuration::from_secs(4));
        let trough_half = trace.arrivals_between(SimDuration::from_secs(4), period);
        assert!(
            peak_half > trough_half * 2,
            "peak {peak_half} vs trough {trough_half}"
        );
    }

    #[test]
    fn drift_rotates_the_hot_query() {
        let c = corpus();
        let base = TraceConfig {
            duration: SimDuration::from_secs(20),
            base_qps: 100.0,
            zipf_s: 1.5,
            pool_size: 32,
            ..TraceConfig::default()
        };
        let hot_in = |trace: &ArrivalTrace, from: u64, to: u64| -> String {
            let mut counts = std::collections::HashMap::new();
            for a in &trace.arrivals {
                if a.offset >= SimDuration::from_secs(from) && a.offset < SimDuration::from_secs(to)
                {
                    *counts.entry(a.query.clone()).or_insert(0u32) += 1;
                }
            }
            counts
                .into_iter()
                .max_by_key(|(q, n)| (*n, q.clone()))
                .unwrap()
                .0
        };
        // Without drift the hot query is stable across the trace.
        let stable = ArrivalTrace::generate(&c, &base);
        assert_eq!(hot_in(&stable, 0, 10), hot_in(&stable, 10, 20));
        // With drift the popularity ranking rotates between the halves.
        let drifting = ArrivalTrace::generate(
            &c,
            &TraceConfig {
                drift_interval: SimDuration::from_secs(10),
                drift_step: 5,
                ..base
            },
        );
        assert_ne!(hot_in(&drifting, 0, 10), hot_in(&drifting, 10, 20));
    }

    #[test]
    fn ramp_rate_grows_over_the_trace() {
        let c = corpus();
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(12),
            base_qps: 50.0,
            shape: RateShape::Ramp {
                over: SimDuration::from_secs(12),
                to: 5.0,
            },
            ..TraceConfig::default()
        };
        let trace = ArrivalTrace::generate(&c, &cfg);
        let first = trace.arrivals_between(SimDuration::ZERO, SimDuration::from_secs(4));
        let last = trace.arrivals_between(SimDuration::from_secs(8), SimDuration::from_secs(12));
        assert!(last > first * 2, "ramp start {first} vs end {last}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ok = TraceConfig::default();
        assert!(ok.validate().is_ok());
        let mut c = ok.clone();
        c.base_qps = 0.0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.pool_size = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.duration = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.shape = RateShape::Diurnal {
            period: SimDuration::from_secs(1),
            amplitude: 1.5,
        };
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.shape = RateShape::FlashCrowd {
            at: SimDuration::ZERO,
            duration: SimDuration::ZERO,
            multiplier: 2.0,
        };
        assert!(c.validate().is_err());
        let mut c = ok;
        c.drift_interval = SimDuration::from_secs(1);
        c.drift_step = 0;
        assert!(c.validate().is_err());
    }
}
