//! Relevance scoring: BM25 (default) and classic TF-IDF.

/// A scorer turns per-term statistics into a relevance contribution.
pub trait Scorer {
    /// Score one term's contribution for one document.
    ///
    /// * `term_freq` — occurrences of the term in the document
    /// * `doc_len` — document length in terms
    /// * `avg_doc_len` — average document length in the collection
    /// * `doc_freq` — number of documents containing the term
    /// * `num_docs` — collection size
    fn score(
        &self,
        term_freq: u32,
        doc_len: u32,
        avg_doc_len: f64,
        doc_freq: usize,
        num_docs: usize,
    ) -> f64;
}

/// Okapi BM25.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Bm25 {
    /// Term-frequency saturation parameter.
    pub k1: f64,
    /// Length-normalisation parameter.
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl Scorer for Bm25 {
    fn score(
        &self,
        term_freq: u32,
        doc_len: u32,
        avg_doc_len: f64,
        doc_freq: usize,
        num_docs: usize,
    ) -> f64 {
        if term_freq == 0 || num_docs == 0 {
            return 0.0;
        }
        let n = num_docs as f64;
        let df = doc_freq.max(1) as f64;
        // BM25+-style floor at 0 to avoid negative idf for very common terms.
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln().max(0.0);
        let tf = term_freq as f64;
        let dl = doc_len.max(1) as f64;
        let avg = avg_doc_len.max(1.0);
        let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg);
        idf * tf * (self.k1 + 1.0) / denom
    }
}

/// Classic TF-IDF with log-scaled term frequency.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct TfIdf;

impl Scorer for TfIdf {
    fn score(
        &self,
        term_freq: u32,
        _doc_len: u32,
        _avg_doc_len: f64,
        doc_freq: usize,
        num_docs: usize,
    ) -> f64 {
        if term_freq == 0 || num_docs == 0 {
            return 0.0;
        }
        let tf = 1.0 + (term_freq as f64).ln();
        let idf = ((num_docs as f64 + 1.0) / (doc_freq.max(1) as f64 + 1.0)).ln() + 1.0;
        tf * idf
    }
}

/// Blend a relevance score with a static page-importance score (PageRank),
/// as the QueenBee frontend does when assembling results. `rank_weight` in
/// `[0, 1]` controls how much the static rank matters.
pub fn blend_with_rank(relevance: f64, rank: f64, rank_weight: f64) -> f64 {
    let w = rank_weight.clamp(0.0, 1.0);
    // Ranks are tiny probabilities; log-scale them into a comparable range.
    let rank_component = (1.0 + rank.max(0.0) * 1e6).ln();
    (1.0 - w) * relevance + w * relevance.max(1e-9) * rank_component
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bm25_prefers_rarer_terms() {
        let s = Bm25::default();
        let rare = s.score(3, 100, 100.0, 5, 10_000);
        let common = s.score(3, 100, 100.0, 5_000, 10_000);
        assert!(rare > common);
    }

    #[test]
    fn bm25_term_frequency_saturates() {
        let s = Bm25::default();
        let one = s.score(1, 100, 100.0, 10, 1000);
        let five = s.score(5, 100, 100.0, 10, 1000);
        let fifty = s.score(50, 100, 100.0, 10, 1000);
        assert!(five > one);
        assert!(fifty > five);
        // Diminishing returns: the jump from 5 to 50 is smaller than 5x.
        assert!((fifty - five) < 4.0 * (five - one));
    }

    #[test]
    fn bm25_penalizes_long_documents() {
        let s = Bm25::default();
        let short = s.score(3, 50, 100.0, 10, 1000);
        let long = s.score(3, 500, 100.0, 10, 1000);
        assert!(short > long);
    }

    #[test]
    fn bm25_never_negative_and_zero_cases() {
        let s = Bm25::default();
        assert_eq!(s.score(0, 10, 10.0, 1, 100), 0.0);
        assert_eq!(s.score(3, 10, 10.0, 1, 0), 0.0);
        // Extremely common term: idf floored at zero, never negative.
        assert!(s.score(3, 10, 10.0, 100, 100) >= 0.0);
    }

    #[test]
    fn tfidf_basic_ordering() {
        let s = TfIdf;
        assert!(s.score(4, 10, 10.0, 2, 1000) > s.score(1, 10, 10.0, 2, 1000));
        assert!(s.score(2, 10, 10.0, 2, 1000) > s.score(2, 10, 10.0, 500, 1000));
        assert_eq!(s.score(0, 10, 10.0, 2, 1000), 0.0);
    }

    #[test]
    fn rank_blending_monotone_in_rank() {
        let low = blend_with_rank(2.0, 1e-6, 0.3);
        let high = blend_with_rank(2.0, 1e-3, 0.3);
        assert!(high > low);
        // Weight 0 ignores rank entirely.
        assert_eq!(blend_with_rank(2.0, 0.5, 0.0), 2.0);
    }
}
