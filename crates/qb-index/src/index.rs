//! The in-memory inverted index used by the baselines, by individual worker
//! bees while preparing shard updates, and as the reference oracle in tests.

use crate::analyzer::Analyzer;
use crate::doc::{doc_id_for_name, DocMeta, DocTable};
use crate::postings::PostingList;
use std::collections::HashMap;

/// An in-memory inverted index over analyzed documents.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    terms: HashMap<String, PostingList>,
    docs: DocTable,
}

impl InvertedIndex {
    /// Empty index.
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Index (or re-index) a document given its already-analyzed term
    /// frequencies. Any previous postings of the same document are replaced.
    pub fn index_document(
        &mut self,
        name: &str,
        version: u64,
        creator: u64,
        term_freqs: &[(String, u32)],
    ) -> u64 {
        let doc_id = doc_id_for_name(name);
        if self.docs.get(doc_id).is_some() {
            self.remove_document(name);
        }
        let length: u32 = term_freqs.iter().map(|(_, f)| *f).sum();
        self.docs.upsert(
            doc_id,
            DocMeta {
                name: name.to_string(),
                length,
                version,
                creator,
            },
        );
        for (term, freq) in term_freqs {
            self.terms
                .entry(term.clone())
                .or_default()
                .upsert(doc_id, *freq);
        }
        doc_id
    }

    /// Analyze raw text with `analyzer` and index it.
    pub fn index_text(
        &mut self,
        analyzer: &Analyzer,
        name: &str,
        version: u64,
        creator: u64,
        text: &str,
    ) -> u64 {
        let tf = analyzer.term_frequencies(text);
        self.index_document(name, version, creator, &tf)
    }

    /// Remove a document from the index. Returns true if it was present.
    pub fn remove_document(&mut self, name: &str) -> bool {
        let doc_id = doc_id_for_name(name);
        if self.docs.remove(doc_id).is_none() {
            return false;
        }
        self.terms.retain(|_, list| {
            list.remove(doc_id);
            !list.is_empty()
        });
        true
    }

    /// The posting list of a term.
    pub fn postings(&self, term: &str) -> Option<&PostingList> {
        self.terms.get(term)
    }

    /// The document table.
    pub fn docs(&self) -> &DocTable {
        &self.docs
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.terms.get(term).map(|l| l.len()).unwrap_or(0)
    }

    /// Iterate over `(term, posting list)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&String, &PostingList)> {
        self.terms.iter()
    }

    /// Merge another index into this one (used when a YaCy-style peer gossips
    /// its local index, and to combine per-bee partial indexes in tests).
    /// Documents present in both are taken from `other` (assumed newer).
    pub fn merge_from(&mut self, other: &InvertedIndex) {
        for (_, meta) in other.docs.iter() {
            let tf: Vec<(String, u32)> = other
                .terms
                .iter()
                .filter_map(|(term, list)| {
                    list.get(doc_id_for_name(&meta.name))
                        .map(|f| (term.clone(), f))
                })
                .collect();
            self.index_document(&meta.name, meta.version, meta.creator, &tf);
        }
    }

    /// Total encoded size of all posting lists (index footprint metric).
    pub fn encoded_bytes(&self) -> usize {
        self.terms.values().map(|l| l.encoded_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> Analyzer {
        Analyzer::new()
    }

    fn build_small() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        let a = analyzer();
        idx.index_text(
            &a,
            "doc/bees",
            1,
            1,
            "worker bees maintain the index and earn honey",
        );
        idx.index_text(
            &a,
            "doc/web",
            1,
            2,
            "the decentralized web serves content from peers",
        );
        idx.index_text(
            &a,
            "doc/search",
            1,
            3,
            "search engines index the web and rank pages",
        );
        idx
    }

    #[test]
    fn indexing_populates_terms_and_docs() {
        let idx = build_small();
        assert_eq!(idx.doc_count(), 3);
        assert!(idx.term_count() > 5);
        assert_eq!(idx.doc_freq(&Analyzer::stem("index")), 2);
        assert_eq!(idx.doc_freq(&Analyzer::stem("honey")), 1);
        assert_eq!(idx.doc_freq("nonexistentterm"), 0);
    }

    #[test]
    fn reindexing_replaces_old_postings() {
        let mut idx = build_small();
        let a = analyzer();
        idx.index_text(
            &a,
            "doc/bees",
            2,
            1,
            "completely different content about nectar",
        );
        assert_eq!(idx.doc_count(), 3);
        // Old unique term gone, new term present.
        assert_eq!(idx.doc_freq(&Analyzer::stem("honey")), 0);
        assert_eq!(idx.doc_freq(&Analyzer::stem("nectar")), 1);
        let id = doc_id_for_name("doc/bees");
        assert_eq!(idx.docs().get(id).unwrap().version, 2);
    }

    #[test]
    fn remove_document_cleans_postings() {
        let mut idx = build_small();
        assert!(idx.remove_document("doc/web"));
        assert!(!idx.remove_document("doc/web"));
        assert_eq!(idx.doc_count(), 2);
        assert_eq!(idx.doc_freq(&Analyzer::stem("peers")), 0);
    }

    #[test]
    fn merge_combines_indexes() {
        let a = analyzer();
        let mut left = InvertedIndex::new();
        left.index_text(&a, "l/one", 1, 1, "alpha beta gamma");
        let mut right = InvertedIndex::new();
        right.index_text(&a, "r/two", 1, 2, "beta delta");
        right.index_text(&a, "l/one", 2, 1, "alpha beta updated");
        left.merge_from(&right);
        assert_eq!(left.doc_count(), 2);
        assert_eq!(
            left.docs().get(doc_id_for_name("l/one")).unwrap().version,
            2
        );
        assert_eq!(left.doc_freq("beta"), 2);
    }

    #[test]
    fn encoded_bytes_grows_with_content() {
        let mut idx = InvertedIndex::new();
        let a = analyzer();
        let before = idx.encoded_bytes();
        idx.index_text(&a, "d", 1, 1, "some words to index here");
        assert!(idx.encoded_bytes() > before);
    }
}
