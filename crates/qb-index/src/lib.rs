//! The search index.
//!
//! Three layers:
//!
//! * **Text analysis** ([`analyzer`]): tokenization, stopword removal and a
//!   light suffix stemmer — what a worker bee runs over a freshly published
//!   page before updating the index.
//! * **Local index structures** ([`postings`], [`doc`], [`index`],
//!   [`scorer`], [`query`]): compressed posting lists (doc-id deltas +
//!   varints), galloping intersection, a document table with lengths, BM25 /
//!   TF-IDF scoring and top-k query evaluation. The centralized and
//!   YaCy-style baselines and the QueenBee frontend all reuse these.
//! * **The distributed index** ([`shard`]): one shard per term, stored inline
//!   in the DHT when small and spilled into content-addressed storage when
//!   large, with a versioned pointer record in the DHT — "the index ...
//!   hosted in a decentralized storage" of the paper, maintained by worker
//!   bees and read by the query frontend.

pub mod analyzer;
pub mod doc;
pub mod index;
pub mod postings;
pub mod query;
pub mod scorer;
pub mod shard;

pub use analyzer::Analyzer;
pub use doc::{doc_id_for_name, DocMeta, DocTable};
pub use index::InvertedIndex;
pub use postings::{Posting, PostingList};
pub use query::{search, Query, QueryMode, ScoredDoc};
pub use scorer::{blend_with_rank, Bm25, Scorer, TfIdf};
pub use shard::{
    DistributedIndex, IndexStats, ShardEntry, ShardPosting, ShardReadMachine, ShardReadStep,
    StatsReadMachine,
};
