//! Query parsing and evaluation over a local [`InvertedIndex`].

use crate::analyzer::Analyzer;
use crate::index::InvertedIndex;
use crate::postings::PostingList;
use crate::scorer::{blend_with_rank, Scorer};
use qb_common::{QbError, QbResult};
use std::collections::HashMap;

/// How multi-term queries combine their terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QueryMode {
    /// Documents must contain every term (the frontend default: "intersecting
    /// the matched inverted lists").
    And,
    /// Documents may contain any term.
    Or,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Query {
    /// Analyzed query terms (deduplicated, order preserved).
    pub terms: Vec<String>,
    /// Conjunctive or disjunctive evaluation.
    pub mode: QueryMode,
}

impl Query {
    /// Parse raw query text with the same analyzer used for documents.
    pub fn parse(analyzer: &Analyzer, text: &str, mode: QueryMode) -> QbResult<Query> {
        let mut terms = Vec::new();
        for t in analyzer.analyze(text) {
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        if terms.is_empty() {
            return Err(QbError::Query(format!(
                "query '{text}' has no searchable terms after analysis"
            )));
        }
        Ok(Query { terms, mode })
    }
}

/// One search result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoredDoc {
    /// Document id.
    pub doc_id: u64,
    /// Page name.
    pub name: String,
    /// Final score (relevance, optionally blended with PageRank).
    pub score: f64,
    /// Version of the page the index entry reflects.
    pub version: u64,
    /// Creator account (for ad revenue attribution).
    pub creator: u64,
}

/// Evaluate a query against a local index.
///
/// * `rank` — optional static PageRank per doc id, blended into the score
///   with weight `rank_weight`.
/// * `top_k` — number of results to return.
pub fn search(
    index: &InvertedIndex,
    query: &Query,
    scorer: &dyn Scorer,
    rank: Option<&HashMap<u64, f64>>,
    rank_weight: f64,
    top_k: usize,
) -> Vec<ScoredDoc> {
    // Gather posting lists; in AND mode a missing term means no results.
    let mut lists: Vec<(&String, &PostingList)> = Vec::with_capacity(query.terms.len());
    for term in &query.terms {
        match index.postings(term) {
            Some(list) => lists.push((term, list)),
            None => {
                if query.mode == QueryMode::And {
                    return Vec::new();
                }
            }
        }
    }
    if lists.is_empty() {
        return Vec::new();
    }

    // Candidate set: intersection (AND) or union (OR) of doc ids.
    let candidates: PostingList = match query.mode {
        QueryMode::And => {
            // Intersect smallest-first for speed.
            let mut sorted = lists.clone();
            sorted.sort_by_key(|(_, l)| l.len());
            let mut acc = sorted[0].1.clone();
            for (_, l) in &sorted[1..] {
                acc = acc.intersect(l);
                if acc.is_empty() {
                    return Vec::new();
                }
            }
            acc
        }
        QueryMode::Or => {
            let mut acc = PostingList::new();
            for (_, l) in &lists {
                acc = acc.union(l);
            }
            acc
        }
    };

    let num_docs = index.doc_count();
    let avg_len = index.docs().avg_length();
    let mut scored: Vec<ScoredDoc> = Vec::with_capacity(candidates.len());
    for posting in candidates.postings() {
        let Some(meta) = index.docs().get(posting.doc_id) else {
            continue;
        };
        let mut relevance = 0.0;
        for (term, list) in &lists {
            if let Some(tf) = list.get(posting.doc_id) {
                relevance += scorer.score(tf, meta.length, avg_len, index.doc_freq(term), num_docs);
            }
        }
        let final_score = match rank {
            Some(r) => blend_with_rank(
                relevance,
                r.get(&posting.doc_id).copied().unwrap_or(0.0),
                rank_weight,
            ),
            None => relevance,
        };
        scored.push(ScoredDoc {
            doc_id: posting.doc_id,
            name: meta.name.clone(),
            score: final_score,
            version: meta.version,
            creator: meta.creator,
        });
    }
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.doc_id.cmp(&b.doc_id))
    });
    scored.truncate(top_k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::doc_id_for_name;
    use crate::scorer::Bm25;

    fn build() -> (InvertedIndex, Analyzer) {
        let a = Analyzer::new();
        let mut idx = InvertedIndex::new();
        idx.index_text(
            &a,
            "p/honey",
            1,
            1,
            "honey honey honey bees and nectar production",
        );
        idx.index_text(
            &a,
            "p/bees",
            1,
            2,
            "worker bees maintain the distributed index",
        );
        idx.index_text(
            &a,
            "p/web",
            1,
            3,
            "the decentralized web replaces central servers",
        );
        idx.index_text(
            &a,
            "p/search",
            1,
            4,
            "search the decentralized web with queenbee honey",
        );
        (idx, a)
    }

    #[test]
    fn parse_rejects_empty_queries() {
        let a = Analyzer::new();
        assert!(Query::parse(&a, "the of and", QueryMode::And).is_err());
        assert!(Query::parse(&a, "", QueryMode::And).is_err());
        let q = Query::parse(&a, "Decentralized WEB", QueryMode::And).unwrap();
        assert_eq!(q.terms.len(), 2);
    }

    #[test]
    fn and_query_requires_all_terms() {
        let (idx, a) = build();
        let q = Query::parse(&a, "decentralized web", QueryMode::And).unwrap();
        let results = search(&idx, &q, &Bm25::default(), None, 0.0, 10);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"p/web"));
        assert!(names.contains(&"p/search"));
        // A term missing from the index gives zero results in AND mode.
        let q = Query::parse(&a, "decentralized zebra", QueryMode::And).unwrap();
        assert!(search(&idx, &q, &Bm25::default(), None, 0.0, 10).is_empty());
    }

    #[test]
    fn or_query_unions_terms() {
        let (idx, a) = build();
        let q = Query::parse(&a, "honey zebra", QueryMode::Or).unwrap();
        let results = search(&idx, &q, &Bm25::default(), None, 0.0, 10);
        assert_eq!(results.len(), 2); // p/honey and p/search mention honey
    }

    #[test]
    fn higher_term_frequency_ranks_higher() {
        let (idx, a) = build();
        let q = Query::parse(&a, "honey", QueryMode::And).unwrap();
        let results = search(&idx, &q, &Bm25::default(), None, 0.0, 10);
        assert_eq!(results[0].name, "p/honey");
        assert!(results[0].score > results[1].score);
    }

    #[test]
    fn rank_blending_can_reorder_results() {
        let (idx, a) = build();
        let q = Query::parse(&a, "honey", QueryMode::And).unwrap();
        let mut rank = HashMap::new();
        // Give p/search an enormous static rank.
        rank.insert(doc_id_for_name("p/search"), 0.9);
        rank.insert(doc_id_for_name("p/honey"), 0.000001);
        let blended = search(&idx, &q, &Bm25::default(), Some(&rank), 0.9, 10);
        assert_eq!(blended[0].name, "p/search");
        let unblended = search(&idx, &q, &Bm25::default(), Some(&rank), 0.0, 10);
        assert_eq!(unblended[0].name, "p/honey");
    }

    #[test]
    fn top_k_truncates() {
        let (idx, a) = build();
        let q = Query::parse(
            &a,
            "decentralized web honey bees index search",
            QueryMode::Or,
        )
        .unwrap();
        let results = search(&idx, &q, &Bm25::default(), None, 0.0, 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn results_are_deterministically_ordered() {
        let (idx, a) = build();
        let q = Query::parse(&a, "web", QueryMode::And).unwrap();
        let r1 = search(&idx, &q, &Bm25::default(), None, 0.0, 10);
        let r2 = search(&idx, &q, &Bm25::default(), None, 0.0, 10);
        assert_eq!(r1, r2);
    }
}
