//! Text analysis: tokenization, stopwords and light stemming.

use std::collections::HashSet;

/// English stopwords that carry no retrieval signal. Deliberately short: a
/// long list mostly shrinks the index, a short one keeps tests predictable.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "in",
    "is", "it", "its", "of", "on", "or", "that", "the", "their", "this", "to", "was", "were",
    "which", "will", "with",
];

/// Configurable text analyzer.
#[derive(Debug, Clone)]
pub struct Analyzer {
    stopwords: HashSet<String>,
    /// Apply the light suffix stemmer.
    pub stemming: bool,
    /// Minimum token length kept (after stemming).
    pub min_token_len: usize,
    /// Maximum token length kept (guards against degenerate tokens).
    pub max_token_len: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            stopwords: STOPWORDS.iter().map(|s| s.to_string()).collect(),
            stemming: true,
            min_token_len: 2,
            max_token_len: 32,
        }
    }
}

impl Analyzer {
    /// Analyzer with default settings.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Analyzer without stemming (used by tests that need exact terms).
    pub fn without_stemming() -> Analyzer {
        Analyzer {
            stemming: false,
            ..Analyzer::default()
        }
    }

    /// Is this term a stopword?
    pub fn is_stopword(&self, term: &str) -> bool {
        self.stopwords.contains(term)
    }

    /// Split text into raw lowercase alphanumeric tokens (no filtering).
    pub fn tokenize(text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                for lower in ch.to_lowercase() {
                    current.push(lower);
                }
            } else if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            tokens.push(current);
        }
        tokens
    }

    /// Light suffix stemmer (a small subset of Porter's rules): enough to
    /// conflate plurals and common verb forms without a full stemmer.
    pub fn stem(token: &str) -> String {
        let t = token;
        let try_strip = |s: &str, suffix: &str, min_stem: usize| -> Option<String> {
            if s.ends_with(suffix) && s.len() - suffix.len() >= min_stem {
                Some(s[..s.len() - suffix.len()].to_string())
            } else {
                None
            }
        };
        if let Some(s) = try_strip(t, "ization", 3) {
            return s + "ize";
        }
        if let Some(s) = try_strip(t, "ational", 3) {
            return s + "ate";
        }
        for (suffix, min_stem) in [("iveness", 3), ("fulness", 3), ("ousness", 3)] {
            if let Some(s) = try_strip(t, suffix, min_stem) {
                return s;
            }
        }
        for (suffix, min_stem) in [
            ("ments", 3),
            ("ment", 3),
            ("ness", 3),
            ("ings", 3),
            ("ing", 3),
            ("edly", 3),
            ("ed", 3),
            ("ly", 3),
        ] {
            if let Some(s) = try_strip(t, suffix, min_stem) {
                return s;
            }
        }
        if let Some(s) = try_strip(t, "ies", 2) {
            return s + "y";
        }
        // "es" is only a plural marker after sibilant endings (boxes, churches);
        // otherwise stripping the bare "s" is the right move (engines → engine).
        for sib in ["sses", "xes", "zes", "ches", "shes"] {
            if let Some(s) = try_strip(t, "es", 3) {
                if t.ends_with(sib) {
                    return s;
                }
            }
        }
        if t.ends_with('s') && !t.ends_with("ss") && t.len() > 3 {
            return t[..t.len() - 1].to_string();
        }
        t.to_string()
    }

    /// Full pipeline: tokenize, drop stopwords, stem, drop by length.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        Self::tokenize(text)
            .into_iter()
            .filter(|t| !self.is_stopword(t))
            .map(|t| if self.stemming { Self::stem(&t) } else { t })
            .filter(|t| t.len() >= self.min_token_len && t.len() <= self.max_token_len)
            .collect()
    }

    /// Analyze and return `(term, frequency)` pairs sorted by term.
    pub fn term_frequencies(&self, text: &str) -> Vec<(String, u32)> {
        let mut counts: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
        for t in self.analyze(text) {
            *counts.entry(t).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_non_alphanumeric() {
        assert_eq!(
            Analyzer::tokenize("Hello, DWeb-world! 42 times."),
            vec!["hello", "dweb", "world", "42", "times"]
        );
        assert!(Analyzer::tokenize("  ...  ").is_empty());
    }

    #[test]
    fn stopwords_are_removed() {
        let a = Analyzer::without_stemming();
        let terms = a.analyze("the search engine of the decentralized web");
        assert!(!terms.contains(&"the".to_string()));
        assert!(!terms.contains(&"of".to_string()));
        assert!(terms.contains(&"search".to_string()));
        assert!(terms.contains(&"decentralized".to_string()));
    }

    #[test]
    fn stemming_conflates_related_forms() {
        assert_eq!(Analyzer::stem("searching"), Analyzer::stem("searched"));
        assert_eq!(Analyzer::stem("indexes"), Analyzer::stem("index"));
        assert_eq!(Analyzer::stem("queries"), Analyzer::stem("query"));
        assert_eq!(Analyzer::stem("engines"), Analyzer::stem("engine"));
        // Short words are left alone.
        assert_eq!(Analyzer::stem("is"), "is");
        assert_eq!(Analyzer::stem("bees"), "bee");
    }

    #[test]
    fn analyze_applies_length_bounds() {
        let a = Analyzer::new();
        let terms = a.analyze("i x ab abc");
        assert!(!terms.contains(&"i".to_string()));
        assert!(!terms.contains(&"x".to_string()));
        assert!(terms.contains(&"ab".to_string()));
    }

    #[test]
    fn term_frequencies_count_and_sort() {
        let a = Analyzer::without_stemming();
        let tf = a.term_frequencies("bee bee honey bee nectar honey");
        assert_eq!(
            tf,
            vec![
                ("bee".to_string(), 3),
                ("honey".to_string(), 2),
                ("nectar".to_string(), 1)
            ]
        );
    }

    #[test]
    fn queries_and_documents_analyze_consistently() {
        // The frontend analyzes queries with the same pipeline as documents;
        // a plural query must match a singular document term.
        let a = Analyzer::new();
        let doc_terms = a.analyze("QueenBee rewards worker bees with honey");
        let query_terms = a.analyze("bee reward");
        for q in &query_terms {
            assert!(
                doc_terms.contains(q),
                "query term {q} not found in {doc_terms:?}"
            );
        }
    }

    #[test]
    fn unicode_text_does_not_panic_and_lowercases() {
        let a = Analyzer::new();
        let terms = a.analyze("Größe Überraschung café Привет 東京");
        assert!(terms
            .iter()
            .any(|t| t.contains("größe") || t.contains("grösse")));
        assert!(!terms.is_empty());
    }
}
