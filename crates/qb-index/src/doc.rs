//! The document table: per-document metadata needed for scoring and result
//! presentation.

use qb_common::Hash256;
use std::collections::HashMap;

/// Stable 64-bit document id derived from a page name. Using a hash keeps
/// doc ids consistent across independent worker bees without coordination.
pub fn doc_id_for_name(name: &str) -> u64 {
    let h = Hash256::digest_parts(&[b"doc:", name.as_bytes()]);
    u64::from_be_bytes(h.as_bytes()[..8].try_into().expect("8 bytes"))
}

/// Metadata of one indexed document (page version).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DocMeta {
    /// Page name.
    pub name: String,
    /// Number of index terms in the document (after analysis).
    pub length: u32,
    /// Page version this entry reflects.
    pub version: u64,
    /// Account id of the page's creator (used for ad revenue sharing).
    pub creator: u64,
}

/// Document table: doc id → metadata, plus the aggregates BM25 needs.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct DocTable {
    docs: HashMap<u64, DocMeta>,
    total_length: u64,
}

impl DocTable {
    /// Empty table.
    pub fn new() -> DocTable {
        DocTable::default()
    }

    /// Insert or replace a document's metadata.
    pub fn upsert(&mut self, doc_id: u64, meta: DocMeta) {
        if let Some(old) = self.docs.insert(doc_id, meta) {
            self.total_length -= old.length as u64;
        }
        self.total_length += self.docs[&doc_id].length as u64;
    }

    /// Remove a document; returns its metadata if present.
    pub fn remove(&mut self, doc_id: u64) -> Option<DocMeta> {
        let removed = self.docs.remove(&doc_id);
        if let Some(m) = &removed {
            self.total_length -= m.length as u64;
        }
        removed
    }

    /// Metadata of a document.
    pub fn get(&self, doc_id: u64) -> Option<&DocMeta> {
        self.docs.get(&doc_id)
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Average document length (1.0 when empty to avoid division by zero).
    pub fn avg_length(&self) -> f64 {
        if self.docs.is_empty() {
            1.0
        } else {
            self.total_length as f64 / self.docs.len() as f64
        }
    }

    /// Iterate over `(doc id, metadata)`.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &DocMeta)> {
        self.docs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, len: u32) -> DocMeta {
        DocMeta {
            name: name.into(),
            length: len,
            version: 1,
            creator: 7,
        }
    }

    #[test]
    fn doc_ids_are_stable_and_distinct() {
        assert_eq!(doc_id_for_name("a/page"), doc_id_for_name("a/page"));
        assert_ne!(doc_id_for_name("a/page"), doc_id_for_name("a/other"));
    }

    #[test]
    fn upsert_and_averages() {
        let mut t = DocTable::new();
        assert_eq!(t.avg_length(), 1.0);
        t.upsert(1, meta("a", 100));
        t.upsert(2, meta("b", 300));
        assert_eq!(t.len(), 2);
        assert!((t.avg_length() - 200.0).abs() < 1e-9);
        // Replacing updates the aggregate.
        t.upsert(2, meta("b", 100));
        assert!((t.avg_length() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn remove_updates_aggregates() {
        let mut t = DocTable::new();
        t.upsert(1, meta("a", 50));
        t.upsert(2, meta("b", 150));
        let removed = t.remove(2).unwrap();
        assert_eq!(removed.name, "b");
        assert_eq!(t.len(), 1);
        assert!((t.avg_length() - 50.0).abs() < 1e-9);
        assert!(t.remove(99).is_none());
    }

    #[test]
    fn get_returns_metadata() {
        let mut t = DocTable::new();
        let id = doc_id_for_name("site/home");
        t.upsert(id, meta("site/home", 42));
        assert_eq!(t.get(id).unwrap().length, 42);
        assert!(t.get(12345).is_none());
    }
}
