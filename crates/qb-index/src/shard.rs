//! The distributed inverted index: one shard per term, kept in the DHT /
//! decentralized storage and maintained by worker bees.
//!
//! A shard is self-contained: each posting carries the document length, page
//! name, version and creator, so the query frontend can score results from
//! the shards of the query terms plus one small global-statistics record,
//! without any central document table.
//!
//! Small shards are stored inline as DHT record values; large shards are
//! written to content-addressed storage with a versioned pointer record in
//! the DHT. Versions are monotonically increasing so replicas converge on
//! the newest shard (last-writer-wins), which is also the surface the
//! collusion attack of experiment E6 targets.

use crate::postings::{Posting, PostingList};
use qb_common::{varint, Cid, DhtKey, Hash256, QbError, QbResult, SimDuration, SimInstant};
use qb_dht::{DhtNetwork, LookupMachine, LookupStep};
use qb_simnet::{Poll, RpcHandle, SimNet};
use qb_storage::StorageNetwork;
use qb_trace::SpanId;

/// One posting within a shard, carrying everything needed for scoring.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardPosting {
    /// Document id (hash of the page name).
    pub doc_id: u64,
    /// Term frequency in the document.
    pub term_freq: u32,
    /// Document length in terms.
    pub doc_len: u32,
    /// Page name.
    pub name: String,
    /// Page version this posting reflects.
    pub version: u64,
    /// Creator account id.
    pub creator: u64,
}

/// A term's shard.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardEntry {
    /// The term this shard belongs to.
    pub term: String,
    /// Shard version (bumped on every write).
    pub version: u64,
    /// Postings sorted by doc id.
    pub postings: Vec<ShardPosting>,
}

impl ShardEntry {
    /// Empty shard for a term.
    pub fn empty(term: &str) -> ShardEntry {
        ShardEntry {
            term: term.to_string(),
            version: 0,
            postings: Vec::new(),
        }
    }

    /// Document frequency of the term.
    pub fn doc_freq(&self) -> usize {
        self.postings.len()
    }

    /// Insert or update a posting (only if the incoming version is >= the
    /// stored one, so stale re-indexing never overwrites fresher data).
    pub fn upsert(&mut self, posting: ShardPosting) {
        match self
            .postings
            .binary_search_by_key(&posting.doc_id, |p| p.doc_id)
        {
            Ok(i) => {
                if posting.version >= self.postings[i].version {
                    self.postings[i] = posting;
                }
            }
            Err(i) => self.postings.insert(i, posting),
        }
    }

    /// Remove a document from the shard.
    pub fn remove(&mut self, doc_id: u64) -> bool {
        match self.postings.binary_search_by_key(&doc_id, |p| p.doc_id) {
            Ok(i) => {
                self.postings.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Posting of a document, if present.
    pub fn get(&self, doc_id: u64) -> Option<&ShardPosting> {
        self.postings
            .binary_search_by_key(&doc_id, |p| p.doc_id)
            .ok()
            .map(|i| &self.postings[i])
    }

    /// The doc-id / term-frequency view of the shard as a [`PostingList`]
    /// (used for intersection in the frontend).
    pub fn to_posting_list(&self) -> PostingList {
        PostingList::from_postings(
            self.postings
                .iter()
                .map(|p| Posting {
                    doc_id: p.doc_id,
                    term_freq: p.term_freq,
                })
                .collect(),
        )
    }

    /// Exact byte length of [`ShardEntry::encode`]'s output, without
    /// serializing — for wire-cost accounting (e.g. gossip fill batches).
    pub fn encoded_len(&self) -> usize {
        let mut len = varint::encoded_len(self.term.len() as u64)
            + self.term.len()
            + varint::encoded_len(self.version)
            + varint::encoded_len(self.postings.len() as u64);
        let mut prev = 0u64;
        for p in &self.postings {
            len += varint::encoded_len(p.doc_id.wrapping_sub(prev));
            prev = p.doc_id;
            len += varint::encoded_len(p.term_freq as u64)
                + varint::encoded_len(p.doc_len as u64)
                + varint::encoded_len(p.version)
                + varint::encoded_len(p.creator)
                + varint::encoded_len(p.name.len() as u64)
                + p.name.len();
        }
        len
    }

    /// Serialize the shard.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.postings.len() * 32);
        encode_str(&self.term, &mut out);
        varint::encode_u64(self.version, &mut out);
        varint::encode_u64(self.postings.len() as u64, &mut out);
        let mut prev = 0u64;
        for p in &self.postings {
            varint::encode_u64(p.doc_id.wrapping_sub(prev), &mut out);
            prev = p.doc_id;
            varint::encode_u64(p.term_freq as u64, &mut out);
            varint::encode_u64(p.doc_len as u64, &mut out);
            varint::encode_u64(p.version, &mut out);
            varint::encode_u64(p.creator, &mut out);
            encode_str(&p.name, &mut out);
        }
        out
    }

    /// Deserialize a shard.
    pub fn decode(data: &[u8]) -> QbResult<ShardEntry> {
        let (term, mut pos) = decode_str(data, 0)?;
        let (version, p) = varint::decode_u64(data, pos)?;
        pos = p;
        let (count, p) = varint::decode_u64(data, pos)?;
        pos = p;
        if count > 50_000_000 {
            return Err(QbError::Codec(format!("unreasonable shard size {count}")));
        }
        let mut postings = Vec::with_capacity(count as usize);
        let mut doc_id = 0u64;
        for _ in 0..count {
            let (delta, p) = varint::decode_u64(data, pos)?;
            doc_id = doc_id.wrapping_add(delta);
            let (tf, p) = varint::decode_u64(data, p)?;
            let (dl, p) = varint::decode_u64(data, p)?;
            let (ver, p) = varint::decode_u64(data, p)?;
            let (creator, p) = varint::decode_u64(data, p)?;
            let (name, p) = decode_str(data, p)?;
            pos = p;
            postings.push(ShardPosting {
                doc_id,
                term_freq: tf.min(u32::MAX as u64) as u32,
                doc_len: dl.min(u32::MAX as u64) as u32,
                name,
                version: ver,
                creator,
            });
        }
        if pos != data.len() {
            return Err(QbError::Codec("trailing bytes after shard".into()));
        }
        Ok(ShardEntry {
            term,
            version,
            postings,
        })
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    varint::encode_u64(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(data: &[u8], pos: usize) -> QbResult<(String, usize)> {
    let (len, p) = varint::decode_u64(data, pos)?;
    let end = p + len as usize;
    let bytes = data
        .get(p..end)
        .ok_or_else(|| QbError::Codec("truncated string".into()))?;
    let s =
        String::from_utf8(bytes.to_vec()).map_err(|_| QbError::Codec("invalid utf-8".into()))?;
    Ok((s, end))
}

/// Global collection statistics needed by BM25, stored as a small DHT record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndexStats {
    /// Number of indexed documents.
    pub num_docs: u64,
    /// Sum of document lengths.
    pub total_len: u64,
    /// Version of the statistics record.
    pub version: u64,
}

impl IndexStats {
    /// Average document length (1.0 when empty).
    pub fn avg_len(&self) -> f64 {
        if self.num_docs == 0 {
            1.0
        } else {
            self.total_len as f64 / self.num_docs as f64
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        varint::encode_u64(self.num_docs, &mut out);
        varint::encode_u64(self.total_len, &mut out);
        varint::encode_u64(self.version, &mut out);
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> QbResult<IndexStats> {
        let (num_docs, p) = varint::decode_u64(data, 0)?;
        let (total_len, p) = varint::decode_u64(data, p)?;
        let (version, p) = varint::decode_u64(data, p)?;
        if p != data.len() {
            return Err(QbError::Codec("trailing bytes after index stats".into()));
        }
        Ok(IndexStats {
            num_docs,
            total_len,
            version,
        })
    }
}

/// Cost accounting of a distributed index operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndexOpCost {
    /// End-to-end latency.
    pub latency: SimDuration,
    /// RPC attempts issued.
    pub messages: u64,
}

impl IndexOpCost {
    /// Accumulate another operation's cost.
    pub fn add(&mut self, latency: SimDuration, messages: u64) {
        self.latency += latency;
        self.messages += messages;
    }
}

const SHARD_INLINE_TAG: u8 = 1;
const SHARD_POINTER_TAG: u8 = 2;

/// What a poll of an event-driven index read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardReadStep {
    /// Work remains in flight; the next event is due at `next_event_at`.
    Pending {
        /// Instant of the next completion — poll again at (or after) it.
        next_event_at: SimInstant,
    },
    /// The read has finished; take the result with `into_result`.
    Ready,
}

#[derive(Debug)]
enum ShardReadState {
    Lookup(Box<LookupMachine>),
    Tail {
        handle: RpcHandle,
        completes_at: SimInstant,
        shard: ShardEntry,
    },
    Done {
        result: QbResult<ShardEntry>,
        completed_at: SimInstant,
    },
}

/// An in-progress shard read: a DHT value lookup, optionally followed by a
/// content-addressed storage fetch for pointer records. Create with
/// [`DistributedIndex::begin_read_shard_fresh`], drive with
/// [`DistributedIndex::poll_read_shard`].
#[derive(Debug)]
pub struct ShardReadMachine {
    term: String,
    peer: u64,
    issued_at: SimInstant,
    parent: Option<SpanId>,
    state: ShardReadState,
    cost: IndexOpCost,
    queue_delay: SimDuration,
}

impl ShardReadMachine {
    /// True once the read has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.state, ShardReadState::Done { .. })
    }

    /// Queueing delay accumulated on the reader's uplink so far.
    pub fn queue_delay(&self) -> SimDuration {
        self.queue_delay
    }

    /// The shard, the service cost (lookup + fetch latency, RPC attempts)
    /// and the wall-clock completion instant (which additionally includes
    /// any uplink queueing). Panics unless [`Self::is_done`].
    pub fn into_result(self) -> QbResult<(ShardEntry, IndexOpCost, SimInstant)> {
        match self.state {
            ShardReadState::Done {
                result,
                completed_at,
            } => Ok((result?, self.cost, completed_at)),
            _ => panic!("shard read not finished; poll until Ready"),
        }
    }

    /// Retire anything still in flight without processing it.
    pub fn abandon(&mut self, net: &mut SimNet) {
        match &mut self.state {
            ShardReadState::Lookup(lookup) => lookup.abandon(net),
            ShardReadState::Tail {
                handle,
                completes_at,
                ..
            } => {
                net.poll_complete(*handle, *completes_at);
            }
            ShardReadState::Done { .. } => {}
        }
    }
}

#[derive(Debug)]
enum StatsReadState {
    Lookup(Box<LookupMachine>),
    Done {
        result: QbResult<IndexStats>,
        completed_at: SimInstant,
    },
}

/// An in-progress read of the global statistics record. Create with
/// [`DistributedIndex::begin_read_stats`], drive with
/// [`DistributedIndex::poll_read_stats`].
#[derive(Debug)]
pub struct StatsReadMachine {
    issued_at: SimInstant,
    state: StatsReadState,
    cost: IndexOpCost,
    queue_delay: SimDuration,
}

impl StatsReadMachine {
    /// True once the read has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.state, StatsReadState::Done { .. })
    }

    /// Queueing delay accumulated on the reader's uplink so far.
    pub fn queue_delay(&self) -> SimDuration {
        self.queue_delay
    }

    /// The statistics, the service cost and the wall-clock completion
    /// instant. Panics unless [`Self::is_done`].
    pub fn into_result(self) -> QbResult<(IndexStats, IndexOpCost, SimInstant)> {
        match self.state {
            StatsReadState::Done {
                result,
                completed_at,
            } => Ok((result?, self.cost, completed_at)),
            _ => panic!("stats read not finished; poll until Ready"),
        }
    }

    /// Retire anything still in flight without processing it.
    pub fn abandon(&mut self, net: &mut SimNet) {
        if let StatsReadState::Lookup(lookup) = &mut self.state {
            lookup.abandon(net);
        }
    }
}

/// Read/write interface to the DHT-sharded index.
#[derive(Debug, Clone)]
pub struct DistributedIndex {
    /// Shards whose encoded size is at most this many bytes are stored inline
    /// in the DHT record; larger shards go to content-addressed storage.
    pub inline_threshold: usize,
}

impl Default for DistributedIndex {
    fn default() -> Self {
        DistributedIndex {
            inline_threshold: 2048,
        }
    }
}

impl DistributedIndex {
    /// Create with the default inline threshold.
    pub fn new() -> DistributedIndex {
        DistributedIndex::default()
    }

    /// DHT key of the global statistics record.
    pub fn stats_key() -> DhtKey {
        DhtKey(Hash256::digest(b"idx:@stats"))
    }

    /// Read the shard of `term` as seen from `peer`. A missing shard is
    /// returned as an empty shard (version 0), not an error.
    pub fn read_shard(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        storage: &mut StorageNetwork,
        peer: u64,
        term: &str,
    ) -> QbResult<(ShardEntry, IndexOpCost)> {
        self.read_shard_fresh(net, dht, storage, peer, term, 0)
    }

    /// Like [`DistributedIndex::read_shard`], but a replica older than
    /// `min_version` does not satisfy the lookup: the DHT digs past lagging
    /// replicas (read-repair semantics), so a caller that has already seen
    /// `min_version` of this term never reads the index backwards in time.
    pub fn read_shard_fresh(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        storage: &mut StorageNetwork,
        peer: u64,
        term: &str,
        min_version: u64,
    ) -> QbResult<(ShardEntry, IndexOpCost)> {
        let at = net.now();
        let mut machine = self.begin_read_shard_fresh(net, dht, peer, term, min_version, at, None);
        let mut cursor = at;
        loop {
            match self.poll_read_shard(net, dht, storage, &mut machine, cursor) {
                ShardReadStep::Ready => {
                    let (shard, cost, _) = machine.into_result()?;
                    return Ok((shard, cost));
                }
                ShardReadStep::Pending { next_event_at } => cursor = next_event_at,
            }
        }
    }

    /// Start an event-driven shard read at virtual instant `at` (trace
    /// spans nest under `parent`). Drive with
    /// [`DistributedIndex::poll_read_shard`]; the synchronous
    /// [`DistributedIndex::read_shard_fresh`] drives the same machine
    /// eagerly, so there is exactly one read code path.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_read_shard_fresh(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        peer: u64,
        term: &str,
        min_version: u64,
        at: SimInstant,
        parent: Option<SpanId>,
    ) -> ShardReadMachine {
        let state = if net.is_online(peer) {
            let key = DhtKey::for_term(term);
            ShardReadState::Lookup(Box::new(dht.lookup_begin(
                net,
                peer,
                key.0,
                Some(key),
                min_version,
                at,
                parent,
            )))
        } else {
            ShardReadState::Done {
                result: Err(QbError::NodeOffline(peer)),
                completed_at: at,
            }
        };
        ShardReadMachine {
            term: term.to_string(),
            peer,
            issued_at: at,
            parent,
            state,
            cost: IndexOpCost::default(),
            queue_delay: SimDuration::ZERO,
        }
    }

    /// Advance a shard read at instant `at`. On the lookup finishing, an
    /// inline shard completes immediately; a pointer record charges the
    /// content-addressed fetch and tracks it as an in-flight tail operation
    /// on the reader's uplink, so concurrent reads contend realistically.
    pub fn poll_read_shard(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        storage: &mut StorageNetwork,
        machine: &mut ShardReadMachine,
        at: SimInstant,
    ) -> ShardReadStep {
        loop {
            match &mut machine.state {
                ShardReadState::Lookup(lookup) => match dht.lookup_poll(net, lookup, at) {
                    LookupStep::Pending { next_event_at } => {
                        return ShardReadStep::Pending { next_event_at };
                    }
                    LookupStep::Ready => {
                        let placeholder = ShardReadState::Done {
                            result: Ok(ShardEntry::empty(&machine.term)),
                            completed_at: machine.issued_at,
                        };
                        let ShardReadState::Lookup(lookup) =
                            std::mem::replace(&mut machine.state, placeholder)
                        else {
                            unreachable!("matched Lookup above");
                        };
                        let (outcome, record) = lookup.into_result();
                        machine.cost.add(outcome.latency, outcome.messages);
                        machine.queue_delay += outcome.queue_delay;
                        let lookup_done = machine.issued_at + outcome.latency;
                        machine.state = self.decode_shard_record(
                            net,
                            dht,
                            storage,
                            machine,
                            record,
                            lookup_done,
                        );
                    }
                },
                ShardReadState::Tail {
                    handle,
                    completes_at,
                    shard,
                } => {
                    if at < *completes_at {
                        return ShardReadStep::Pending {
                            next_event_at: *completes_at,
                        };
                    }
                    let mut completed_at = *completes_at;
                    if let Some(Poll::Ready(done)) = net.poll_complete(*handle, *completes_at) {
                        machine.queue_delay += done.queue_delay;
                        completed_at = done.completed_at;
                    }
                    machine.state = ShardReadState::Done {
                        result: Ok(std::mem::replace(shard, ShardEntry::empty(&machine.term))),
                        completed_at,
                    };
                }
                ShardReadState::Done { .. } => return ShardReadStep::Ready,
            }
        }
    }

    /// Turn the record a finished lookup returned into the next machine
    /// state: empty shard (missing record), decoded inline shard, or a
    /// tracked in-flight storage fetch for a pointer record.
    fn decode_shard_record(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        storage: &mut StorageNetwork,
        machine: &mut ShardReadMachine,
        record: Option<qb_dht::Record>,
        lookup_done: SimInstant,
    ) -> ShardReadState {
        let Some(record) = record else {
            return ShardReadState::Done {
                result: Ok(ShardEntry::empty(&machine.term)),
                completed_at: lookup_done,
            };
        };
        let value = record.value;
        match value.first() {
            Some(&SHARD_INLINE_TAG) => ShardReadState::Done {
                result: ShardEntry::decode(&value[1..]),
                completed_at: lookup_done,
            },
            Some(&SHARD_POINTER_TAG) => {
                if value.len() != 33 {
                    return ShardReadState::Done {
                        result: Err(QbError::Codec("bad shard pointer record".into())),
                        completed_at: lookup_done,
                    };
                }
                let mut arr = [0u8; 32];
                arr.copy_from_slice(&value[1..33]);
                let cid = Cid(Hash256::from_bytes(arr));
                match storage.get_object(net, dht, machine.peer, cid) {
                    Ok((bytes, fetch)) => {
                        machine.cost.add(fetch.latency, fetch.messages);
                        match ShardEntry::decode(&bytes) {
                            Ok(shard) => {
                                let handle = net.begin_async_op(
                                    machine.peer,
                                    lookup_done,
                                    fetch.latency,
                                    machine.parent,
                                );
                                let completes_at =
                                    net.async_completes_at(handle).expect("just issued");
                                ShardReadState::Tail {
                                    handle,
                                    completes_at,
                                    shard,
                                }
                            }
                            Err(e) => ShardReadState::Done {
                                result: Err(e),
                                completed_at: lookup_done + fetch.latency,
                            },
                        }
                    }
                    Err(e) => ShardReadState::Done {
                        result: Err(e),
                        completed_at: lookup_done,
                    },
                }
            }
            _ => ShardReadState::Done {
                result: Err(QbError::Codec("unknown shard record tag".into())),
                completed_at: lookup_done,
            },
        }
    }

    /// Write a shard from `peer`. The caller must have bumped
    /// `entry.version`; replicas only accept newer versions.
    pub fn write_shard(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        storage: &mut StorageNetwork,
        peer: u64,
        entry: &ShardEntry,
    ) -> QbResult<IndexOpCost> {
        let mut cost = IndexOpCost::default();
        let key = DhtKey::for_term(&entry.term);
        let encoded = entry.encode();
        let value = if encoded.len() <= self.inline_threshold {
            let mut v = Vec::with_capacity(encoded.len() + 1);
            v.push(SHARD_INLINE_TAG);
            v.extend_from_slice(&encoded);
            v
        } else {
            let (obj, put) = storage.put_object(net, dht, peer, &encoded)?;
            cost.add(put.latency, put.messages);
            let mut v = Vec::with_capacity(33);
            v.push(SHARD_POINTER_TAG);
            v.extend_from_slice(obj.root.0.as_bytes());
            v
        };
        let put = dht.put_record(net, peer, key, value, entry.version)?;
        cost.add(put.latency, put.messages);
        Ok(cost)
    }

    /// Read the global statistics record (zero stats when absent).
    pub fn read_stats(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        peer: u64,
    ) -> QbResult<(IndexStats, IndexOpCost)> {
        let at = net.now();
        let mut machine = self.begin_read_stats(net, dht, peer, at, None);
        let mut cursor = at;
        loop {
            match self.poll_read_stats(net, dht, &mut machine, cursor) {
                ShardReadStep::Ready => {
                    let (stats, cost, _) = machine.into_result()?;
                    return Ok((stats, cost));
                }
                ShardReadStep::Pending { next_event_at } => cursor = next_event_at,
            }
        }
    }

    /// Start an event-driven read of the global statistics record at
    /// virtual instant `at` (trace spans nest under `parent`).
    pub fn begin_read_stats(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        peer: u64,
        at: SimInstant,
        parent: Option<SpanId>,
    ) -> StatsReadMachine {
        let key = Self::stats_key();
        let state = if net.is_online(peer) {
            StatsReadState::Lookup(Box::new(dht.lookup_begin(
                net,
                peer,
                key.0,
                Some(key),
                0,
                at,
                parent,
            )))
        } else {
            StatsReadState::Done {
                result: Err(QbError::NodeOffline(peer)),
                completed_at: at,
            }
        };
        StatsReadMachine {
            issued_at: at,
            state,
            cost: IndexOpCost::default(),
            queue_delay: SimDuration::ZERO,
        }
    }

    /// Advance a statistics read at instant `at`.
    pub fn poll_read_stats(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        machine: &mut StatsReadMachine,
        at: SimInstant,
    ) -> ShardReadStep {
        match &mut machine.state {
            StatsReadState::Lookup(lookup) => match dht.lookup_poll(net, lookup, at) {
                LookupStep::Pending { next_event_at } => ShardReadStep::Pending { next_event_at },
                LookupStep::Ready => {
                    let placeholder = StatsReadState::Done {
                        result: Ok(IndexStats::default()),
                        completed_at: machine.issued_at,
                    };
                    let StatsReadState::Lookup(lookup) =
                        std::mem::replace(&mut machine.state, placeholder)
                    else {
                        unreachable!("matched Lookup above");
                    };
                    let (outcome, record) = lookup.into_result();
                    machine.cost.add(outcome.latency, outcome.messages);
                    machine.queue_delay += outcome.queue_delay;
                    machine.state = StatsReadState::Done {
                        result: match record {
                            Some(rec) => IndexStats::decode(&rec.value),
                            None => Ok(IndexStats::default()),
                        },
                        completed_at: machine.issued_at + outcome.latency,
                    };
                    ShardReadStep::Ready
                }
            },
            StatsReadState::Done { .. } => ShardReadStep::Ready,
        }
    }

    /// Write the global statistics record.
    pub fn write_stats(
        &self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        peer: u64,
        stats: &IndexStats,
    ) -> QbResult<IndexOpCost> {
        let mut cost = IndexOpCost::default();
        let put = dht.put_record(net, peer, Self::stats_key(), stats.encode(), stats.version)?;
        cost.add(put.latency, put.messages);
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qb_dht::DhtConfig;
    use qb_simnet::NetConfig;
    use qb_storage::StorageConfig;

    fn posting(doc: u64, tf: u32, name: &str) -> ShardPosting {
        ShardPosting {
            doc_id: doc,
            term_freq: tf,
            doc_len: 100,
            name: name.to_string(),
            version: 1,
            creator: 42,
        }
    }

    #[test]
    fn shard_upsert_respects_versions() {
        let mut shard = ShardEntry::empty("honey");
        shard.upsert(posting(5, 3, "p/a"));
        shard.upsert(posting(2, 1, "p/b"));
        assert_eq!(shard.doc_freq(), 2);
        assert_eq!(shard.postings[0].doc_id, 2);
        // Older version does not overwrite.
        let mut stale = posting(5, 99, "p/a");
        stale.version = 0;
        shard.upsert(stale);
        assert_eq!(shard.get(5).unwrap().term_freq, 3);
        // Newer version does.
        let mut fresh = posting(5, 7, "p/a");
        fresh.version = 2;
        shard.upsert(fresh);
        assert_eq!(shard.get(5).unwrap().term_freq, 7);
        assert!(shard.remove(2));
        assert!(!shard.remove(2));
    }

    #[test]
    fn shard_encode_decode_round_trip() {
        let mut shard = ShardEntry::empty("decentralized");
        shard.version = 3;
        for i in 0..50u64 {
            shard.upsert(posting(i * 17, (i % 5) as u32 + 1, &format!("page/{i}")));
        }
        let encoded = shard.encode();
        assert_eq!(ShardEntry::decode(&encoded).unwrap(), shard);
        assert_eq!(shard.encoded_len(), encoded.len());
        assert_eq!(
            ShardEntry::empty("t").encoded_len(),
            ShardEntry::empty("t").encode().len()
        );
    }

    #[test]
    fn shard_decode_rejects_garbage() {
        assert!(ShardEntry::decode(&[]).is_err());
        let mut good = ShardEntry::empty("t").encode();
        good.push(9);
        assert!(ShardEntry::decode(&good).is_err());
    }

    #[test]
    fn stats_round_trip_and_avg() {
        let s = IndexStats {
            num_docs: 10,
            total_len: 1500,
            version: 2,
        };
        assert_eq!(IndexStats::decode(&s.encode()).unwrap(), s);
        assert!((s.avg_len() - 150.0).abs() < 1e-9);
        assert_eq!(IndexStats::default().avg_len(), 1.0);
    }

    #[test]
    fn to_posting_list_preserves_docs() {
        let mut shard = ShardEntry::empty("t");
        shard.upsert(posting(9, 2, "a"));
        shard.upsert(posting(3, 1, "b"));
        let pl = shard.to_posting_list();
        assert_eq!(pl.len(), 2);
        assert_eq!(pl.get(9), Some(2));
    }

    fn setup(n: usize, seed: u64) -> (SimNet, DhtNetwork, StorageNetwork) {
        let mut net = SimNet::new(n, NetConfig::lan(), seed);
        let dht = DhtNetwork::build(&mut net, DhtConfig::small());
        let storage = StorageNetwork::new(n, StorageConfig::small());
        (net, dht, storage)
    }

    #[test]
    fn distributed_small_shard_round_trips_inline() {
        let (mut net, mut dht, mut storage) = setup(24, 1);
        let dist = DistributedIndex::new();
        let mut shard = ShardEntry::empty("nectar");
        shard.version = 1;
        shard.upsert(posting(1, 2, "p/one"));
        dist.write_shard(&mut net, &mut dht, &mut storage, 3, &shard)
            .unwrap();
        let (read, cost) = dist
            .read_shard(&mut net, &mut dht, &mut storage, 11, "nectar")
            .unwrap();
        assert_eq!(read, shard);
        assert!(cost.messages > 0);
    }

    #[test]
    fn distributed_large_shard_spills_to_storage() {
        let (mut net, mut dht, mut storage) = setup(24, 2);
        let dist = DistributedIndex {
            inline_threshold: 64,
        };
        let mut shard = ShardEntry::empty("common");
        shard.version = 1;
        for i in 0..200u64 {
            shard.upsert(posting(i, 1, &format!("page/number/{i}")));
        }
        assert!(shard.encode().len() > 64);
        dist.write_shard(&mut net, &mut dht, &mut storage, 0, &shard)
            .unwrap();
        let (read, _) = dist
            .read_shard(&mut net, &mut dht, &mut storage, 17, "common")
            .unwrap();
        assert_eq!(read, shard);
    }

    #[test]
    fn missing_shard_reads_as_empty() {
        let (mut net, mut dht, mut storage) = setup(16, 3);
        let dist = DistributedIndex::new();
        let (shard, _) = dist
            .read_shard(&mut net, &mut dht, &mut storage, 2, "neverwritten")
            .unwrap();
        assert_eq!(shard.version, 0);
        assert!(shard.postings.is_empty());
    }

    #[test]
    fn newer_shard_version_wins() {
        let (mut net, mut dht, mut storage) = setup(24, 4);
        let dist = DistributedIndex::new();
        let mut v1 = ShardEntry::empty("fresh");
        v1.version = 1;
        v1.upsert(posting(1, 1, "old/page"));
        dist.write_shard(&mut net, &mut dht, &mut storage, 1, &v1)
            .unwrap();
        let mut v2 = v1.clone();
        v2.version = 2;
        v2.upsert(posting(2, 5, "new/page"));
        dist.write_shard(&mut net, &mut dht, &mut storage, 5, &v2)
            .unwrap();
        let (read, _) = dist
            .read_shard(&mut net, &mut dht, &mut storage, 20, "fresh")
            .unwrap();
        assert_eq!(read.version, 2);
        assert_eq!(read.doc_freq(), 2);
    }

    #[test]
    fn stats_read_write_round_trip() {
        let (mut net, mut dht, mut storage) = setup(16, 5);
        let _ = &mut storage;
        let dist = DistributedIndex::new();
        let (empty, _) = dist.read_stats(&mut net, &mut dht, 0).unwrap();
        assert_eq!(empty.num_docs, 0);
        let stats = IndexStats {
            num_docs: 42,
            total_len: 8400,
            version: 1,
        };
        dist.write_stats(&mut net, &mut dht, 3, &stats).unwrap();
        let (read, _) = dist.read_stats(&mut net, &mut dht, 12).unwrap();
        assert_eq!(read, stats);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn shard_codec_round_trip_prop(docs in proptest::collection::btree_map(any::<u32>(), (1u32..100, 1u32..500), 0..60)) {
            let mut shard = ShardEntry::empty("prop");
            shard.version = 9;
            for (doc, (tf, dl)) in &docs {
                shard.upsert(ShardPosting {
                    doc_id: *doc as u64,
                    term_freq: *tf,
                    doc_len: *dl,
                    name: format!("n{doc}"),
                    version: 1,
                    creator: 3,
                });
            }
            prop_assert_eq!(ShardEntry::decode(&shard.encode()).unwrap(), shard);
        }
    }
}
