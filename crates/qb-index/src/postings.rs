//! Posting lists: the per-term document lists of the inverted index.

use qb_common::{varint, QbError, QbResult};

/// One posting: a document containing the term, with its term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Posting {
    /// Document identifier.
    pub doc_id: u64,
    /// Number of occurrences of the term in the document.
    pub term_freq: u32,
}

/// A posting list sorted by ascending document id.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Empty list.
    pub fn new() -> PostingList {
        PostingList::default()
    }

    /// Build from unsorted postings (sorts and merges duplicates, keeping the
    /// larger term frequency for a duplicated document).
    pub fn from_postings(mut postings: Vec<Posting>) -> PostingList {
        postings.sort_by_key(|p| p.doc_id);
        let mut merged: Vec<Posting> = Vec::with_capacity(postings.len());
        for p in postings {
            match merged.last_mut() {
                Some(last) if last.doc_id == p.doc_id => {
                    last.term_freq = last.term_freq.max(p.term_freq);
                }
                _ => merged.push(p),
            }
        }
        PostingList { postings: merged }
    }

    /// Number of postings (document frequency of the term).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when no document contains the term.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The postings, sorted by doc id.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Insert or update a posting (keeps the list sorted).
    pub fn upsert(&mut self, doc_id: u64, term_freq: u32) {
        match self.postings.binary_search_by_key(&doc_id, |p| p.doc_id) {
            Ok(i) => self.postings[i].term_freq = term_freq,
            Err(i) => self.postings.insert(i, Posting { doc_id, term_freq }),
        }
    }

    /// Remove a document from the list; returns true if it was present.
    pub fn remove(&mut self, doc_id: u64) -> bool {
        match self.postings.binary_search_by_key(&doc_id, |p| p.doc_id) {
            Ok(i) => {
                self.postings.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Term frequency of a document, if present.
    pub fn get(&self, doc_id: u64) -> Option<u32> {
        self.postings
            .binary_search_by_key(&doc_id, |p| p.doc_id)
            .ok()
            .map(|i| self.postings[i].term_freq)
    }

    /// Intersect with another list using galloping (exponential) search from
    /// the smaller list into the larger one — the frontend's core operation
    /// ("composing the search results by intersecting the matched inverted
    /// lists").
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::new();
        let mut lo = 0usize;
        for p in &small.postings {
            if lo >= large.postings.len() {
                break;
            }
            // Gallop forward until large[hi] >= p.doc_id (or the end).
            let mut step = 1usize;
            let mut hi = lo;
            while hi < large.postings.len() && large.postings[hi].doc_id < p.doc_id {
                lo = hi + 1;
                hi += step;
                step *= 2;
            }
            // The first element >= p.doc_id (if any) is at an index in [lo, hi].
            let end = if hi >= large.postings.len() {
                large.postings.len()
            } else {
                hi + 1
            };
            if let Ok(i) = large.postings[lo..end].binary_search_by_key(&p.doc_id, |q| q.doc_id) {
                let q = large.postings[lo + i];
                out.push(Posting {
                    doc_id: p.doc_id,
                    // min() is symmetric, so intersect(a, b) == intersect(b, a)
                    // and the result is adequate for conjunctive scoring.
                    term_freq: p.term_freq.min(q.term_freq),
                });
                lo += i + 1;
            }
        }
        PostingList { postings: out }
    }

    /// Union with another list (summing term frequencies for shared docs).
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.postings.len() && j < other.postings.len() {
            let a = self.postings[i];
            let b = other.postings[j];
            match a.doc_id.cmp(&b.doc_id) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(Posting {
                        doc_id: a.doc_id,
                        term_freq: a.term_freq.saturating_add(b.term_freq),
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.postings[i..]);
        out.extend_from_slice(&other.postings[j..]);
        PostingList { postings: out }
    }

    /// Encode as doc-id deltas + term frequencies, both LEB128 varints.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.postings.len() * 3);
        varint::encode_u64(self.postings.len() as u64, &mut out);
        let mut prev = 0u64;
        for p in &self.postings {
            varint::encode_u64(p.doc_id - prev, &mut out);
            varint::encode_u64(p.term_freq as u64, &mut out);
            prev = p.doc_id;
        }
        out
    }

    /// Decode a list produced by [`PostingList::encode`].
    pub fn decode(data: &[u8]) -> QbResult<PostingList> {
        let (count, mut pos) = varint::decode_u64(data, 0)?;
        if count > 100_000_000 {
            return Err(QbError::Codec(format!(
                "unreasonable posting count {count}"
            )));
        }
        let mut postings = Vec::with_capacity(count as usize);
        let mut doc_id = 0u64;
        for _ in 0..count {
            let (delta, p) = varint::decode_u64(data, pos)?;
            let (tf, p2) = varint::decode_u64(data, p)?;
            pos = p2;
            doc_id = doc_id
                .checked_add(delta)
                .ok_or_else(|| QbError::Codec("doc id overflow".into()))?;
            postings.push(Posting {
                doc_id,
                term_freq: tf.min(u32::MAX as u64) as u32,
            });
            // First delta is the absolute id; subsequent deltas must be > 0
            // to keep the list strictly increasing, except we tolerate 0 and
            // normalise it away on re-encode.
        }
        if pos != data.len() {
            return Err(QbError::Codec("trailing bytes after posting list".into()));
        }
        Ok(PostingList::from_postings(postings))
    }

    /// Size of the encoded form in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn list(ids: &[u64]) -> PostingList {
        PostingList::from_postings(
            ids.iter()
                .map(|&d| Posting {
                    doc_id: d,
                    term_freq: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn from_postings_sorts_and_dedups() {
        let l = PostingList::from_postings(vec![
            Posting {
                doc_id: 5,
                term_freq: 2,
            },
            Posting {
                doc_id: 1,
                term_freq: 1,
            },
            Posting {
                doc_id: 5,
                term_freq: 7,
            },
        ]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.postings()[0].doc_id, 1);
        assert_eq!(l.get(5), Some(7));
    }

    #[test]
    fn upsert_and_remove_keep_order() {
        let mut l = PostingList::new();
        l.upsert(10, 1);
        l.upsert(2, 3);
        l.upsert(7, 2);
        l.upsert(2, 9);
        assert_eq!(l.len(), 3);
        assert_eq!(l.get(2), Some(9));
        assert!(l.remove(7));
        assert!(!l.remove(7));
        let ids: Vec<u64> = l.postings().iter().map(|p| p.doc_id).collect();
        assert_eq!(ids, vec![2, 10]);
    }

    #[test]
    fn intersect_known_case() {
        let a = list(&[1, 3, 5, 7, 9, 11]);
        let b = list(&[3, 4, 5, 10, 11]);
        let i = a.intersect(&b);
        let ids: Vec<u64> = i.postings().iter().map(|p| p.doc_id).collect();
        assert_eq!(ids, vec![3, 5, 11]);
        // Symmetric.
        let j = b.intersect(&a);
        assert_eq!(i, j);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = list(&[1, 2, 3]);
        let e = PostingList::new();
        assert!(a.intersect(&e).is_empty());
        assert!(e.intersect(&a).is_empty());
    }

    #[test]
    fn union_known_case() {
        let a = list(&[1, 3, 5]);
        let b = list(&[3, 4]);
        let u = a.union(&b);
        let ids: Vec<u64> = u.postings().iter().map(|p| p.doc_id).collect();
        assert_eq!(ids, vec![1, 3, 4, 5]);
        assert_eq!(u.get(3), Some(2), "shared doc sums term frequencies");
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = PostingList::from_postings(vec![
            Posting {
                doc_id: 0,
                term_freq: 1,
            },
            Posting {
                doc_id: 100,
                term_freq: 3,
            },
            Posting {
                doc_id: 1_000_000_007,
                term_freq: 2,
            },
        ]);
        let decoded = PostingList::decode(&l.encode()).unwrap();
        assert_eq!(decoded, l);
        // Empty list round-trips too.
        assert_eq!(
            PostingList::decode(&PostingList::new().encode()).unwrap(),
            PostingList::new()
        );
    }

    #[test]
    fn decode_rejects_truncated_and_trailing() {
        let l = list(&[1, 2, 3]);
        let mut enc = l.encode();
        enc.pop();
        assert!(PostingList::decode(&enc).is_err());
        let mut enc2 = l.encode();
        enc2.push(0);
        assert!(PostingList::decode(&enc2).is_err());
    }

    #[test]
    fn delta_encoding_is_compact_for_dense_lists() {
        let dense = PostingList::from_postings(
            (0..10_000u64)
                .map(|d| Posting {
                    doc_id: d,
                    term_freq: 1,
                })
                .collect(),
        );
        // Two bytes per posting (delta=1, tf=1) plus the count header.
        assert!(dense.encoded_len() < 10_000 * 3);
    }

    proptest! {
        #[test]
        fn round_trip_random(ids in proptest::collection::btree_set(any::<u32>(), 0..500)) {
            let postings: Vec<Posting> = ids.iter().map(|&d| Posting { doc_id: d as u64, term_freq: (d % 7) + 1 }).collect();
            let l = PostingList::from_postings(postings);
            prop_assert_eq!(PostingList::decode(&l.encode()).unwrap(), l);
        }

        #[test]
        fn intersection_matches_set_semantics(a in proptest::collection::btree_set(0u64..2000, 0..300),
                                              b in proptest::collection::btree_set(0u64..2000, 0..300)) {
            let la = list(&a.iter().copied().collect::<Vec<_>>());
            let lb = list(&b.iter().copied().collect::<Vec<_>>());
            let expected: BTreeSet<u64> = a.intersection(&b).copied().collect();
            let got: BTreeSet<u64> = la.intersect(&lb).postings().iter().map(|p| p.doc_id).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn union_matches_set_semantics(a in proptest::collection::btree_set(0u64..2000, 0..300),
                                       b in proptest::collection::btree_set(0u64..2000, 0..300)) {
            let la = list(&a.iter().copied().collect::<Vec<_>>());
            let lb = list(&b.iter().copied().collect::<Vec<_>>());
            let expected: BTreeSet<u64> = a.union(&b).copied().collect();
            let got: BTreeSet<u64> = la.union(&lb).postings().iter().map(|p| p.doc_id).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
