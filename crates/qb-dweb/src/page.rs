//! The web page model and its (deliberately tiny) HTML rendering/parsing.

use qb_common::{QbError, QbResult};

/// A page on the decentralized web.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WebPage {
    /// Stable page name, e.g. `"wiki/decentralized-web"`.
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Body text (already plain text; the corpus generator produces prose).
    pub body: String,
    /// Names of pages this page links to.
    pub out_links: Vec<String>,
}

impl WebPage {
    /// Create a page.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        body: impl Into<String>,
        out_links: Vec<String>,
    ) -> WebPage {
        WebPage {
            name: name.into(),
            title: title.into(),
            body: body.into(),
            out_links,
        }
    }

    /// Render the page to its canonical HTML form. The rendering is
    /// deterministic, so the content cid of a page version is stable.
    pub fn render_html(&self) -> String {
        let mut html = String::with_capacity(self.body.len() + 256);
        html.push_str("<html><head><title>");
        html.push_str(&escape(&self.title));
        html.push_str("</title><meta name=\"dweb-name\" content=\"");
        html.push_str(&escape(&self.name));
        html.push_str("\"></head><body>\n<p>");
        html.push_str(&escape(&self.body));
        html.push_str("</p>\n");
        for link in &self.out_links {
            html.push_str("<a href=\"dweb://");
            html.push_str(&escape(link));
            html.push_str("\">");
            html.push_str(&escape(link));
            html.push_str("</a>\n");
        }
        html.push_str("</body></html>\n");
        html
    }

    /// Parse a page back from its canonical HTML form.
    pub fn from_html(html: &str) -> QbResult<WebPage> {
        let title = extract_between(html, "<title>", "</title>")
            .ok_or_else(|| QbError::Codec("page html has no <title>".into()))?;
        let name = extract_between(html, "dweb-name\" content=\"", "\"")
            .ok_or_else(|| QbError::Codec("page html has no dweb-name meta".into()))?;
        let body = extract_between(html, "<p>", "</p>")
            .ok_or_else(|| QbError::Codec("page html has no body paragraph".into()))?;
        let mut out_links = Vec::new();
        let mut rest = html;
        while let Some(start) = rest.find("href=\"dweb://") {
            let after = &rest[start + "href=\"dweb://".len()..];
            match after.find('"') {
                Some(end) => {
                    out_links.push(unescape(&after[..end]));
                    rest = &after[end..];
                }
                None => break,
            }
        }
        Ok(WebPage {
            name: unescape(&name),
            title: unescape(&title),
            body: unescape(&body),
            out_links,
        })
    }

    /// The searchable text of the page: title plus body.
    pub fn text(&self) -> String {
        format!("{} {}", self.title, self.body)
    }

    /// Approximate page size in bytes (rendered form).
    pub fn size_bytes(&self) -> usize {
        self.render_html().len()
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

fn extract_between(haystack: &str, start: &str, end: &str) -> Option<String> {
    let s = haystack.find(start)? + start.len();
    let e = haystack[s..].find(end)? + s;
    Some(haystack[s..e].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> WebPage {
        WebPage::new(
            "wiki/dweb",
            "The Decentralized Web",
            "Content is addressed by cryptographic hash and served by peers.",
            vec!["wiki/ipfs".into(), "wiki/ndn".into()],
        )
    }

    #[test]
    fn render_and_parse_round_trip() {
        let page = sample();
        let html = page.render_html();
        assert!(html.contains("dweb://wiki/ipfs"));
        let parsed = WebPage::from_html(&html).unwrap();
        assert_eq!(parsed, page);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().render_html(), sample().render_html());
    }

    #[test]
    fn parse_rejects_non_pages() {
        assert!(WebPage::from_html("not html at all").is_err());
        assert!(WebPage::from_html("<html><body>no title</body></html>").is_err());
    }

    #[test]
    fn text_includes_title_and_body() {
        let t = sample().text();
        assert!(t.contains("Decentralized"));
        assert!(t.contains("cryptographic"));
    }

    #[test]
    fn escaping_handles_special_characters() {
        let page = WebPage::new(
            "a&b",
            "Title with <tags> & \"quotes\"",
            "body < > & \"",
            vec!["x&y".into()],
        );
        let parsed = WebPage::from_html(&page.render_html()).unwrap();
        assert_eq!(parsed, page);
    }

    proptest! {
        #[test]
        fn round_trip_random_pages(
            name in "[a-z]{1,12}(/[a-z]{1,12})?",
            title in "[a-zA-Z ]{0,40}",
            body in "[a-zA-Z0-9 .,]{0,200}",
            links in proptest::collection::vec("[a-z]{1,10}", 0..5),
        ) {
            let page = WebPage::new(name, title, body, links);
            let parsed = WebPage::from_html(&page.render_html()).unwrap();
            prop_assert_eq!(parsed, page);
        }
    }
}
