//! The DWeb page layer.
//!
//! A [`WebPage`] is the unit of content in the decentralized web: it has a
//! stable name (the DWeb analogue of a URL), a title, body text and out-links
//! to other pages. Pages are rendered to a small deterministic HTML form,
//! published into content-addressed storage ([`qb_storage`]) and registered
//! on the blockchain ([`qb_chain`]) through the publish contract — that
//! registration is what replaces crawling in QueenBee.
//!
//! [`ops::publish_page`] and [`ops::fetch_page`] wire the three substrates
//! together and are used by the QueenBee engine, the baselines and the
//! examples.

pub mod ops;
pub mod page;

pub use ops::{fetch_page, fetch_page_by_cid, publish_page, PublishOutcome};
pub use page::WebPage;
