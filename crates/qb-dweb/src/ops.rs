//! Publish and fetch operations wiring pages through storage, the DHT and
//! the blockchain registry.

use crate::page::WebPage;
use qb_chain::{AccountId, Blockchain, Call};
use qb_common::{Cid, QbError, QbResult};
use qb_dht::DhtNetwork;
use qb_simnet::SimNet;
use qb_storage::{FetchStats, ObjectRef, StorageNetwork};

/// Result of publishing a page.
#[derive(Debug, Clone)]
pub struct PublishOutcome {
    /// Reference to the stored content.
    pub object: ObjectRef,
    /// Storage/replication cost accounting.
    pub stats: FetchStats,
    /// The version number assigned by the registry (after the next seal).
    pub registered_name: String,
}

/// Publish (create or update) a page from peer `peer` owned by `creator`:
/// store the rendered HTML in decentralized storage, then register the
/// name → cid mapping and the out-links on the blockchain. The registry
/// transaction is queued; it takes effect when the chain seals its next block
/// (the caller controls sealing cadence).
pub fn publish_page(
    net: &mut SimNet,
    dht: &mut DhtNetwork,
    storage: &mut StorageNetwork,
    chain: &mut Blockchain,
    peer: u64,
    creator: AccountId,
    page: &WebPage,
) -> QbResult<PublishOutcome> {
    let html = page.render_html();
    let (object, stats) = storage.put_object(net, dht, peer, html.as_bytes())?;
    chain.submit_call(
        creator,
        Call::PublishPage {
            name: page.name.clone(),
            cid: object.root,
            out_links: page.out_links.clone(),
        },
    );
    Ok(PublishOutcome {
        object,
        stats,
        registered_name: page.name.clone(),
    })
}

/// Fetch a page by name: resolve the name through the on-chain registry, then
/// fetch and verify the content from decentralized storage.
pub fn fetch_page(
    net: &mut SimNet,
    dht: &mut DhtNetwork,
    storage: &mut StorageNetwork,
    chain: &Blockchain,
    peer: u64,
    name: &str,
) -> QbResult<(WebPage, FetchStats)> {
    let record = chain
        .publish_registry()
        .get(name)
        .ok_or_else(|| QbError::NotFound(format!("page '{name}' is not registered")))?;
    fetch_page_by_cid(net, dht, storage, peer, record.cid)
}

/// Fetch a page directly by content cid (used when the caller already holds a
/// registry record or an index entry).
pub fn fetch_page_by_cid(
    net: &mut SimNet,
    dht: &mut DhtNetwork,
    storage: &mut StorageNetwork,
    peer: u64,
    cid: Cid,
) -> QbResult<(WebPage, FetchStats)> {
    let (bytes, stats) = storage.get_object(net, dht, peer, cid)?;
    let html = String::from_utf8(bytes)
        .map_err(|_| QbError::Codec("page content is not valid UTF-8".into()))?;
    let page = WebPage::from_html(&html)?;
    Ok((page, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_chain::ChainConfig;
    use qb_common::SimInstant;
    use qb_dht::DhtConfig;
    use qb_simnet::NetConfig;
    use qb_storage::StorageConfig;

    fn setup(n: usize, seed: u64) -> (SimNet, DhtNetwork, StorageNetwork, Blockchain) {
        let mut net = SimNet::new(n, NetConfig::lan(), seed);
        let dht = DhtNetwork::build(&mut net, DhtConfig::small());
        let storage = StorageNetwork::new(n, StorageConfig::small());
        let chain = Blockchain::new(ChainConfig::default());
        (net, dht, storage, chain)
    }

    fn sample_page(name: &str) -> WebPage {
        WebPage::new(
            name,
            format!("Title of {name}"),
            "queenbee indexes the decentralized web without crawling anything at all",
            vec!["other/page".into()],
        )
    }

    #[test]
    fn publish_then_fetch_by_name() {
        let (mut net, mut dht, mut storage, mut chain) = setup(24, 1);
        let page = sample_page("site/home");
        let outcome = publish_page(
            &mut net,
            &mut dht,
            &mut storage,
            &mut chain,
            3,
            AccountId(100),
            &page,
        )
        .unwrap();
        assert_eq!(outcome.registered_name, "site/home");
        chain.seal_block(SimInstant::ZERO);
        let (fetched, stats) =
            fetch_page(&mut net, &mut dht, &mut storage, &chain, 15, "site/home").unwrap();
        assert_eq!(fetched, page);
        assert!(stats.bytes > 0);
        // Creator got the publish reward.
        assert_eq!(chain.balance(AccountId(100)), chain.config().publish_reward);
    }

    #[test]
    fn fetch_unregistered_page_fails() {
        let (mut net, mut dht, mut storage, chain) = setup(8, 2);
        let err =
            fetch_page(&mut net, &mut dht, &mut storage, &chain, 0, "missing/page").unwrap_err();
        assert!(matches!(err, QbError::NotFound(_)));
    }

    #[test]
    fn update_changes_registry_cid_and_content() {
        let (mut net, mut dht, mut storage, mut chain) = setup(24, 3);
        let v1 = sample_page("blog/post");
        publish_page(
            &mut net,
            &mut dht,
            &mut storage,
            &mut chain,
            1,
            AccountId(7),
            &v1,
        )
        .unwrap();
        chain.seal_block(SimInstant::ZERO);
        let cid_v1 = chain.publish_registry().get("blog/post").unwrap().cid;

        let mut v2 = v1.clone();
        v2.body = "fresh new content that replaces the stale old body".into();
        publish_page(
            &mut net,
            &mut dht,
            &mut storage,
            &mut chain,
            1,
            AccountId(7),
            &v2,
        )
        .unwrap();
        chain.seal_block(SimInstant::ZERO);
        let rec = chain.publish_registry().get("blog/post").unwrap();
        assert_eq!(rec.version, 2);
        assert_ne!(rec.cid, cid_v1);

        let (fetched, _) =
            fetch_page(&mut net, &mut dht, &mut storage, &chain, 9, "blog/post").unwrap();
        assert_eq!(fetched.body, v2.body);
        // The old version remains fetchable by its cid (tamper-proof history).
        let (old, _) = fetch_page_by_cid(&mut net, &mut dht, &mut storage, 9, cid_v1).unwrap();
        assert_eq!(old.body, v1.body);
    }

    #[test]
    fn tampered_content_is_rejected_not_served() {
        let (mut net, mut dht, mut storage, mut chain) = setup(24, 4);
        let page = sample_page("bank/login");
        let outcome = publish_page(
            &mut net,
            &mut dht,
            &mut storage,
            &mut chain,
            0,
            AccountId(1),
            &page,
        )
        .unwrap();
        chain.seal_block(SimInstant::ZERO);
        // Corrupt every pinned replica of the manifest.
        for holder in storage.pinned_holders(&outcome.object.root) {
            storage.corrupt_pinned(
                holder,
                &outcome.object.root,
                b"<html>phishing</html>".to_vec(),
            );
        }
        let err =
            fetch_page(&mut net, &mut dht, &mut storage, &chain, 12, "bank/login").unwrap_err();
        assert!(matches!(err, QbError::IntegrityViolation { .. }));
    }
}
