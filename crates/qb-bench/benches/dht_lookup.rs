//! Criterion benchmark: Kademlia put/get cost at two network sizes (E8a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb_common::DhtKey;
use qb_dht::{DhtConfig, DhtNetwork};
use qb_simnet::{NetConfig, SimNet};

fn bench_dht(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_lookup");
    for &n in &[64usize, 256] {
        let mut net = SimNet::new(n, NetConfig::lan(), 42);
        let mut dht = DhtNetwork::build(&mut net, DhtConfig::default());
        // Preload records.
        for i in 0..100u64 {
            let key = DhtKey::from_bytes(format!("key{i}").as_bytes());
            dht.put_record(&mut net, i % n as u64, key, vec![0u8; 64], 1)
                .unwrap();
        }
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("get_record", n), &n, |b, _| {
            b.iter(|| {
                let key = DhtKey::from_bytes(format!("key{}", i % 100).as_bytes());
                i += 1;
                dht.get_record(&mut net, (i * 7) % n as u64, key).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dht);
criterion_main!(benches);
