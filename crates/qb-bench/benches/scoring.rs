//! Criterion benchmark: BM25 / TF-IDF scoring and local query evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use qb_bench::build_corpus;
use qb_index::{search, Analyzer, Bm25, InvertedIndex, Query, QueryMode, Scorer, TfIdf};

fn bench_scoring(c: &mut Criterion) {
    let s = Bm25::default();
    c.bench_function("scoring/bm25_1M_calls", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for tf in 1..1_000u32 {
                for df in (1..1_000usize).step_by(97) {
                    acc += s.score(tf, 150, 120.0, df, 100_000);
                }
            }
            acc
        })
    });
    c.bench_function("scoring/tfidf_calls", |b| {
        let t = TfIdf;
        b.iter(|| {
            (1..10_000u32)
                .map(|tf| t.score(tf, 100, 100.0, 50, 100_000))
                .sum::<f64>()
        })
    });
    // Full local query evaluation over a generated corpus.
    let corpus = build_corpus(7, 300);
    let analyzer = Analyzer::new();
    let mut index = InvertedIndex::new();
    for (i, p) in corpus.pages.iter().enumerate() {
        index.index_text(&analyzer, &p.name, 1, corpus.creators[i], &p.text());
    }
    let query = Query::parse(
        &analyzer,
        &corpus.pages[0]
            .body
            .split_whitespace()
            .take(2)
            .collect::<Vec<_>>()
            .join(" "),
        QueryMode::And,
    )
    .unwrap();
    c.bench_function("scoring/local_query_300_docs", |b| {
        b.iter(|| search(&index, &query, &Bm25::default(), None, 0.0, 10))
    });
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
