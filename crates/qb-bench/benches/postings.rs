//! Criterion benchmark: posting-list intersection and codec (frontend core op).

use criterion::{criterion_group, criterion_main, Criterion};
use qb_index::{Posting, PostingList};

fn lists() -> (PostingList, PostingList) {
    let a = PostingList::from_postings(
        (0..100_000u64)
            .step_by(3)
            .map(|d| Posting {
                doc_id: d,
                term_freq: 2,
            })
            .collect(),
    );
    let b = PostingList::from_postings(
        (0..100_000u64)
            .step_by(7)
            .map(|d| Posting {
                doc_id: d,
                term_freq: 1,
            })
            .collect(),
    );
    (a, b)
}

fn bench_postings(c: &mut Criterion) {
    let (a, b) = lists();
    c.bench_function("postings/intersect_33k_x_14k", |bencher| {
        bencher.iter(|| a.intersect(&b))
    });
    c.bench_function("postings/union_33k_x_14k", |bencher| {
        bencher.iter(|| a.union(&b))
    });
    let encoded = a.encode();
    c.bench_function("postings/encode_33k", |bencher| bencher.iter(|| a.encode()));
    c.bench_function("postings/decode_33k", |bencher| {
        bencher.iter(|| PostingList::decode(&encoded).unwrap())
    });
}

criterion_group!(benches, bench_postings);
criterion_main!(benches);
