//! Criterion benchmark: the qb-gossip overlay — digest extraction, full
//! gossip rounds over a warmed fleet, delta vs full digest encodings, the
//! holdings filter, churn (join with bootstrap anti-entropy) and
//! warm-start snapshot round-trips.

use criterion::{criterion_group, criterion_main, Criterion};
use qb_cache::CacheConfig;
use qb_common::SimInstant;
use qb_gossip::{DigestMode, GossipConfig, GossipFleet, ShardFilter};
use qb_index::{ShardEntry, ShardPosting};
use qb_simnet::{NetConfig, SimNet};

fn sample_shard(term: &str, docs: usize) -> ShardEntry {
    let mut s = ShardEntry::empty(term);
    s.version = 1;
    for i in 0..docs as u64 {
        s.upsert(ShardPosting {
            doc_id: i * 31 + 7,
            term_freq: (i % 7) as u32 + 1,
            doc_len: 80,
            name: format!("page/{term}/{i}"),
            version: 1,
            creator: i % 50,
        });
    }
    s
}

/// A fleet where frontend 0 holds `terms` hot shards and everyone else is
/// cold — the worst case a gossip round has to propagate.
fn warmed_fleet(frontends: usize, terms: usize) -> (GossipFleet, SimNet) {
    let net = SimNet::new(frontends + 8, NetConfig::lan(), 42);
    let mut fleet = GossipFleet::new(
        GossipConfig::enabled(frontends),
        &CacheConfig::enabled(),
        42,
    );
    let now = SimInstant::ZERO;
    for t in 0..terms {
        let shard = sample_shard(&format!("term{t}"), 16);
        fleet.cache_mut(0).store_shard(&shard, now);
        fleet.observe(0, &shard.term, shard.version);
    }
    (fleet, net)
}

fn bench_digest(c: &mut Criterion) {
    let (fleet, _net) = warmed_fleet(2, 256);
    c.bench_function("gossip/hot_set_digest_256_shards", |b| {
        b.iter(|| fleet.frontend(0).cache().shard_digest(64, SimInstant::ZERO))
    });
}

fn bench_round(c: &mut Criterion) {
    for frontends in [4usize, 8] {
        let now = SimInstant::ZERO;
        // Cold fleet: setup dominates less than the 64-shard fan-out.
        c.bench_function(
            &format!("gossip/round_cold_fleet/{frontends}_frontends"),
            |b| {
                b.iter(|| {
                    let (mut fleet, mut net) = warmed_fleet(frontends, 64);
                    fleet.run_round(&mut net, now, false);
                    fleet.stats().shards_accepted
                })
            },
        );
        // Steady state: everyone already warm, rounds move only digests.
        let (mut fleet, mut net) = warmed_fleet(frontends, 64);
        fleet.run_round(&mut net, now, true);
        c.bench_function(
            &format!("gossip/round_warm_fleet/{frontends}_frontends"),
            |b| b.iter(|| fleet.run_round(&mut net, now, false)),
        );
    }
}

/// Steady-state round cost per digest encoding: the fleet is converged, so
/// full digests keep re-shipping the hot set while deltas collapse to the
/// holdings filter.
fn bench_digest_modes(c: &mut Criterion) {
    for mode in [DigestMode::Full, DigestMode::Delta] {
        let label = match mode {
            DigestMode::Full => "full",
            DigestMode::Delta => "delta",
        };
        let now = SimInstant::ZERO;
        let net = SimNet::new(16, NetConfig::lan(), 42);
        let mut config = GossipConfig::enabled(8);
        config.digest_mode = mode;
        let mut fleet = GossipFleet::new(config, &CacheConfig::enabled(), 42);
        for t in 0..64 {
            let shard = sample_shard(&format!("term{t}"), 16);
            fleet.cache_mut(0).store_shard(&shard, now);
            fleet.observe(0, &shard.term, shard.version);
        }
        let mut net = net;
        for _ in 0..4 {
            fleet.run_round(&mut net, now, false);
        }
        c.bench_function(&format!("gossip/steady_round_{label}_digests"), |b| {
            b.iter(|| {
                fleet.run_round(&mut net, now, false);
                fleet.stats().digest_bytes
            })
        });
    }
}

fn bench_filter(c: &mut Criterion) {
    let holdings: Vec<(String, u64)> = (0..256)
        .map(|i| (format!("term{i}"), (i % 7 + 1) as u64))
        .collect();
    c.bench_function("gossip/filter_build_256_holdings", |b| {
        b.iter(|| ShardFilter::build(&holdings, 8))
    });
    let filter = ShardFilter::build(&holdings, 8);
    c.bench_function("gossip/filter_probe", |b| {
        b.iter(|| filter.contains("term128", 4))
    });
}

/// Filter reuse across exchanges: a converged fleet's steady round with the
/// per-frontend filter cache (filters served from `(generation, instant)`)
/// vs the same round with the cache defeated by a holdings mutation before
/// every measurement — the per-exchange rebuild cost the cache removes.
fn bench_filter_reuse(c: &mut Criterion) {
    let now = SimInstant::ZERO;
    let converged = || {
        let (mut fleet, mut net) = warmed_fleet(8, 256);
        for _ in 0..4 {
            fleet.run_round(&mut net, now, false);
        }
        (fleet, net)
    };
    // Steady round: holdings unchanged, every exchange reuses the filter.
    let (mut fleet, mut net) = converged();
    c.bench_function("gossip/steady_round_filter_cached/8_frontends", |b| {
        b.iter(|| {
            fleet.run_round(&mut net, now, false);
            fleet.stats().filter_reuses
        })
    });
    // Same round, but a mutation on every frontend invalidates the cached
    // filters first: every exchange pays the rebuild.
    let (mut fleet, mut net) = converged();
    c.bench_function("gossip/steady_round_filter_rebuilt/8_frontends", |b| {
        b.iter(|| {
            for i in 0..8 {
                let shard = sample_shard("churnterm", 4);
                fleet.cache_mut(i).store_shard(&shard, now);
            }
            fleet.run_round(&mut net, now, false);
            fleet.stats().filter_builds
        })
    });
}

/// Churn: a frontend joining a warmed fleet, including the bootstrap
/// anti-entropy exchange that fills its cache from a live neighbour.
fn bench_join(c: &mut Criterion) {
    let now = SimInstant::ZERO;
    c.bench_function("gossip/join_with_bootstrap_64_shards", |b| {
        b.iter(|| {
            let (mut fleet, mut net) = warmed_fleet(4, 64);
            fleet.run_round(&mut net, now, false);
            let peer = net.add_peer();
            fleet.join(&mut net, peer, now).expect("join")
        })
    });
}

fn bench_warm_start(c: &mut Criterion) {
    let (fleet, _net) = warmed_fleet(2, 128);
    let now = SimInstant::ZERO;
    c.bench_function("gossip/warm_start_export_128_shards", |b| {
        b.iter(|| fleet.export_hot_set(0, 128, now))
    });
    let snapshot = fleet.export_hot_set(0, 128, now);
    c.bench_function("gossip/warm_start_import_128_shards", |b| {
        b.iter(|| {
            let (mut fleet, _net) = warmed_fleet(2, 0);
            fleet.import_hot_set(1, &snapshot, now).expect("import")
        })
    });
}

criterion_group!(
    benches,
    bench_digest,
    bench_round,
    bench_digest_modes,
    bench_filter,
    bench_filter_reuse,
    bench_join,
    bench_warm_start
);
criterion_main!(benches);
