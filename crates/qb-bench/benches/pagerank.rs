//! Criterion benchmark: reference and decentralized PageRank (E8b).

use criterion::{criterion_group, criterion_main, Criterion};
use qb_common::DetRng;
use qb_rank::{pagerank, BeeRankBehaviour, DecentralizedPageRank, LinkGraph, PageRankConfig};
use qb_workload::generate_links;

fn graph(n: usize) -> LinkGraph {
    let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let links = generate_links(&names, 6, &mut DetRng::new(1));
    let mut g = LinkGraph::new();
    for (i, name) in names.iter().enumerate() {
        g.set_links(name, &links[i]);
    }
    g
}

fn bench_pagerank(c: &mut Criterion) {
    let g = graph(2_000);
    c.bench_function("pagerank/reference_2k_nodes", |b| {
        b.iter(|| pagerank(&g, &PageRankConfig::default()))
    });
    let small = graph(300);
    let dpr = DecentralizedPageRank::default();
    let bees = vec![BeeRankBehaviour::Honest; 9];
    c.bench_function("pagerank/decentralized_verified_300_nodes", |b| {
        b.iter(|| dpr.run(&small, &bees))
    });
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
