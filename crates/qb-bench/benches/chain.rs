//! Criterion benchmark: blockchain transaction application and sealing (E8b).

use criterion::{criterion_group, criterion_main, Criterion};
use qb_chain::{AccountId, Blockchain, Call, ChainConfig};
use qb_common::{Cid, SimInstant};

fn bench_chain(c: &mut Criterion) {
    c.bench_function("chain/seal_block_1000_publishes", |b| {
        b.iter(|| {
            let mut chain = Blockchain::new(ChainConfig::default());
            for i in 0..1_000u64 {
                chain.submit_call(
                    AccountId(100 + (i % 20)),
                    Call::PublishPage {
                        name: format!("page{i}"),
                        cid: Cid::for_data(&i.to_be_bytes()),
                        out_links: vec![format!("page{}", i / 2)],
                    },
                );
            }
            chain.seal_block(SimInstant::ZERO)
        })
    });
    c.bench_function("chain/ad_click_settlement", |b| {
        let mut chain = Blockchain::new(ChainConfig::default());
        chain
            .fund_from_treasury(AccountId(500), 100_000_000)
            .unwrap();
        chain.submit_call(
            AccountId(500),
            Call::CreateAdCampaign {
                keywords: vec!["kw".into()],
                bid_per_click: 10,
                budget: 50_000_000,
            },
        );
        chain.seal_block(SimInstant::ZERO);
        let ad = chain.ad_market().match_keyword("kw")[0].id;
        b.iter(|| {
            chain.submit_call(
                qb_chain::TREASURY,
                Call::RecordAdClick {
                    ad,
                    page_creator: AccountId(600),
                    serving_bee: AccountId(700),
                },
            );
            chain.seal_block(SimInstant::ZERO)
        })
    });
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
