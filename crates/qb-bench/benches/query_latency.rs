//! Criterion benchmark: end-to-end QueenBee query evaluation (E1b's cost side).

use criterion::{criterion_group, criterion_main, Criterion};
use qb_bench::{build_corpus, build_engine, publish_corpus};
use qb_common::DetRng;
use qb_workload::QueryWorkload;

fn bench_query(c: &mut Criterion) {
    let corpus = build_corpus(3, 60);
    let mut qb = build_engine(48, 6, 3);
    publish_corpus(&mut qb, &corpus);
    qb.run_rank_round().unwrap();
    let workload = QueryWorkload::new(&corpus);
    let queries = workload.generate_batch(&corpus, &mut DetRng::new(3), 64);
    let mut i = 0usize;
    c.bench_function("query_latency/queenbee_search", |b| {
        b.iter(|| {
            i += 1;
            qb.search((i % 40) as u64, &queries[i % queries.len()])
        })
    });
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
