//! Criterion benchmark: the planner/executor query pipeline — planning cost
//! on a warm cache (plan + response assembly, no network), cold batch
//! execution vs the sequential loop (E11's cost side), and response
//! assembly from the result tier.

use criterion::{criterion_group, criterion_main, Criterion};
use qb_bench::{build_corpus, build_engine_with, publish_corpus};
use qb_cache::CacheConfig;
use qb_common::DetRng;
use qb_queenbee::{QueenBee, QueenBeeConfig, RoutingPolicy, SearchRequest};
use qb_workload::{Corpus, QueryWorkload, ZipfSampler};

const POOL: usize = 40;

fn corpus() -> Corpus {
    build_corpus(0xB47C, 30)
}

fn engine(corpus: &Corpus, cache: bool) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 48;
    config.num_bees = 4;
    config.seed = 0xB47C;
    if cache {
        config.cache = CacheConfig::enabled();
    }
    let mut qb = build_engine_with(config);
    publish_corpus(&mut qb, corpus);
    qb
}

fn zipf_requests(corpus: &Corpus, n: usize, seed: u64) -> Vec<SearchRequest> {
    let workload = QueryWorkload::new(corpus);
    let pool = workload.generate_batch(corpus, &mut DetRng::new(seed), POOL);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let mut rng = DetRng::new(seed ^ 0xF);
    (0..n)
        .map(|i| {
            SearchRequest::new(pool[zipf.sample(&mut rng)].as_str())
                .route(RoutingPolicy::HashPeer((i % 40) as u64))
        })
        .collect()
}

/// Planning cost: a fully warmed cache answers every probe locally, so the
/// batch call measures term analysis + cache planning + response assembly.
fn bench_plan(c: &mut Criterion) {
    let corpus = corpus();
    let mut qb = engine(&corpus, true);
    let requests = zipf_requests(&corpus, 32, 1);
    // Warm every query once so planning always hits the result tier.
    qb.search_batch(requests.clone()).expect("warm-up");
    c.bench_function("query/plan_warm_batch_32", |b| {
        b.iter(|| qb.search_batch(requests.clone()).expect("warm batch"))
    });
}

/// Cold execution: batch windows vs the equivalent sequential loop, cache
/// off, on a fresh engine per iteration (the engine build is hoisted out of
/// the timing loop as far as criterion allows via iter_batched).
fn bench_batch_execute(c: &mut Criterion) {
    let corpus = corpus();
    let requests = zipf_requests(&corpus, 32, 2);
    c.bench_function("query/cold_batch_32", |b| {
        b.iter_batched(
            || (engine(&corpus, false), requests.clone()),
            |(mut qb, requests)| qb.search_batch(requests).expect("batch"),
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("query/cold_sequential_32", |b| {
        b.iter_batched(
            || (engine(&corpus, false), requests.clone()),
            |(mut qb, requests)| {
                requests
                    .into_iter()
                    .map(|r| qb.search_request(r).expect("query"))
                    .collect::<Vec<_>>()
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// The pipelined engine: a duplicate-heavy 64-query stream through
/// overlapping windows (window memo active) vs the same stream as
/// back-to-back `search_batch` windows — the driver + memo overhead and
/// its CPU dedup, on the host-time side (the simulated-makespan side is
/// experiment E13).
fn bench_pipelined(c: &mut Criterion) {
    use qb_queenbee::PipelineConfig;
    let corpus = corpus();
    let requests = zipf_requests(&corpus, 64, 4);
    c.bench_function("query/pipelined_64_window16_depth4", |b| {
        b.iter_batched(
            || (engine(&corpus, false), requests.clone()),
            |(mut qb, requests)| {
                qb.search_pipelined(
                    requests,
                    PipelineConfig {
                        window_size: 16,
                        max_windows_in_flight: 4,
                        ..PipelineConfig::default()
                    },
                )
                .expect("pipelined stream")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("query/back_to_back_64_window16", |b| {
        b.iter_batched(
            || (engine(&corpus, false), requests.clone()),
            |(mut qb, requests)| {
                requests
                    .chunks(16)
                    .map(|w| qb.search_batch(w.to_vec()).expect("window"))
                    .collect::<Vec<_>>()
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// Response assembly alone: a single warm request served from the result
/// tier (plan probe + pagination + provenance + trace).
fn bench_response_assembly(c: &mut Criterion) {
    let corpus = corpus();
    let mut qb = engine(&corpus, true);
    let request = zipf_requests(&corpus, 1, 3).remove(0);
    qb.search_request(request.clone()).expect("warm-up");
    c.bench_function("query/response_assembly_warm_hit", |b| {
        b.iter(|| qb.search_request(request.clone()).expect("warm hit"))
    });
}

criterion_group!(
    benches,
    bench_plan,
    bench_batch_execute,
    bench_pipelined,
    bench_response_assembly
);
criterion_main!(benches);
