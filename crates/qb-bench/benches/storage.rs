//! Criterion benchmark: content-addressed storage publish and fetch (E1/E4).

use criterion::{criterion_group, criterion_main, Criterion};
use qb_dht::{DhtConfig, DhtNetwork};
use qb_simnet::{NetConfig, SimNet};
use qb_storage::{chunk_content_defined, ChunkerConfig, StorageConfig, StorageNetwork};

fn bench_storage(c: &mut Criterion) {
    let data: Vec<u8> = (0..256 * 1024u32).map(|i| (i % 251) as u8).collect();
    c.bench_function("storage/cdc_chunking_256KiB", |b| {
        b.iter(|| chunk_content_defined(&data, &ChunkerConfig::default()))
    });

    let mut net = SimNet::new(32, NetConfig::lan(), 7);
    let mut dht = DhtNetwork::build(&mut net, DhtConfig::small());
    let mut storage = StorageNetwork::new(32, StorageConfig::small());
    let page: Vec<u8> = (0..16 * 1024u32).map(|i| (i % 251) as u8).collect();
    let (obj, _) = storage.put_object(&mut net, &mut dht, 0, &page).unwrap();
    c.bench_function("storage/put_16KiB_object", |b| {
        let mut salt = 0u32;
        b.iter(|| {
            salt += 1;
            let mut d = page.clone();
            d[0..4].copy_from_slice(&salt.to_be_bytes());
            storage
                .put_object(&mut net, &mut dht, (salt % 20) as u64, &d)
                .unwrap()
        })
    });
    c.bench_function("storage/get_16KiB_object", |b| {
        let mut peer = 0u64;
        b.iter(|| {
            peer = (peer + 1) % 30;
            storage
                .get_object(&mut net, &mut dht, peer, obj.root)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
