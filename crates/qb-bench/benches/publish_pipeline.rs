//! Criterion benchmark: the no-crawling publish → index pipeline (E3's cost side).

use criterion::{criterion_group, criterion_main, Criterion};
use qb_bench::build_engine;
use qb_chain::AccountId;
use qb_dweb::WebPage;

fn bench_publish_pipeline(c: &mut Criterion) {
    let mut qb = build_engine(32, 4, 99);
    let mut i = 0u64;
    c.bench_function("publish_pipeline/publish_and_index_one_page", |b| {
        b.iter(|| {
            i += 1;
            let page = WebPage::new(
                format!("bench/page{i}"),
                "Benchmark page",
                format!("benchmark content number {i} with a few distinct terms alpha beta gamma"),
                vec![],
            );
            qb.publish(i % 20, AccountId(1_000 + (i % 5)), &page)
                .unwrap();
            qb.seal();
            qb.process_publish_events().unwrap()
        })
    });
}

criterion_group!(benches, bench_publish_pipeline);
criterion_main!(benches);
