//! Criterion benchmark: the qb-cache tiers and the cached frontend (E9's
//! cost side) — raw tier operations, then end-to-end warm vs cold search.

use criterion::{criterion_group, criterion_main, Criterion};
use qb_bench::{build_corpus, build_engine_with, publish_corpus};
use qb_cache::{CacheConfig, EvictionPolicy, QueryCache};
use qb_common::{DetRng, SimInstant};
use qb_index::{ShardEntry, ShardPosting};
use qb_queenbee::QueenBeeConfig;
use qb_workload::{QueryWorkload, ZipfSampler};

fn sample_shard(term: &str, docs: usize) -> ShardEntry {
    let mut s = ShardEntry::empty(term);
    s.version = 1;
    for i in 0..docs as u64 {
        s.upsert(ShardPosting {
            doc_id: i * 31 + 7,
            term_freq: (i % 7) as u32 + 1,
            doc_len: 80,
            name: format!("page/{term}/{i}"),
            version: 1,
            creator: i % 50,
        });
    }
    s
}

fn bench_tier_ops(c: &mut Criterion) {
    let now = SimInstant::ZERO;
    for (label, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("sampled_lfu", EvictionPolicy::SampledLfu { sample: 5 }),
    ] {
        let mut config = CacheConfig::enabled();
        config.policy = policy;
        config.shard_capacity_bytes = 64 * 1024;
        let mut cache = QueryCache::new(config);
        let shards: Vec<ShardEntry> = (0..200)
            .map(|i| sample_shard(&format!("term{i}"), 20))
            .collect();
        for s in &shards {
            cache.store_shard(s, now);
        }
        let zipf = ZipfSampler::new(200, 1.0);
        let mut rng = DetRng::new(9);
        c.bench_function(&format!("cache/shard_lookup_zipf/{label}"), |b| {
            b.iter(|| {
                let term = format!("term{}", zipf.sample(&mut rng));
                cache.lookup_shard(&term, now, 1)
            })
        });
    }
}

fn bench_invalidation(c: &mut Criterion) {
    let now = SimInstant::ZERO;
    c.bench_function("cache/invalidate_term_with_100_dependent_queries", |b| {
        b.iter(|| {
            let mut cache = QueryCache::new(CacheConfig::enabled());
            cache.store_shard(&sample_shard("hot", 20), now);
            for i in 0..100 {
                cache.store_result(
                    &format!("hot q{i}"),
                    vec![],
                    vec![("hot".into(), 1), (format!("q{i}"), 1)],
                    now,
                );
            }
            cache.invalidate_term("hot", now)
        })
    });
}

fn bench_cached_search(c: &mut Criterion) {
    let corpus = build_corpus(11, 60);
    let workload = QueryWorkload::new(&corpus);
    let queries = workload.generate_batch(&corpus, &mut DetRng::new(11), 64);

    let mut cold_config = QueenBeeConfig::small();
    cold_config.num_peers = 48;
    cold_config.num_bees = 6;
    cold_config.seed = 11;
    let mut warm_config = cold_config.clone();
    warm_config.cache = CacheConfig::enabled();

    let mut cold = build_engine_with(cold_config);
    publish_corpus(&mut cold, &corpus);
    let mut i = 0usize;
    c.bench_function("cache/search_cache_off", |b| {
        b.iter(|| {
            i += 1;
            cold.search((i % 40) as u64, &queries[i % queries.len()])
        })
    });

    let mut warm = build_engine_with(warm_config);
    publish_corpus(&mut warm, &corpus);
    // Pre-warm every query once so the measured loop sees the steady state.
    for (i, q) in queries.iter().enumerate() {
        let _ = warm.search((i % 40) as u64, q);
    }
    let mut j = 0usize;
    c.bench_function("cache/search_cache_warm", |b| {
        b.iter(|| {
            j += 1;
            warm.search((j % 40) as u64, &queries[j % queries.len()])
        })
    });
}

criterion_group!(
    benches,
    bench_tier_ops,
    bench_invalidation,
    bench_cached_search
);
criterion_main!(benches);
