//! CI bench-regression gate: diff the key metrics of a quick-mode
//! experiments run against the committed baseline and fail on regressions.
//!
//! Usage:
//!   cargo run -p qb-bench --release --bin bench_gate -- \
//!       bench-results/baseline-quick.json bench-results/experiments.json \
//!       [--threshold 0.10]
//!
//! The gate reads the machine-readable tables the `experiments` binary
//! writes, extracts the headline metrics from the optimized configurations
//! of E9–E17 and fails when a current value regresses past the threshold
//! (default 10%): lower-is-better metrics (DHT shard fetches, RPC
//! messages, gossip bytes, stale serves, pipelined makespan, open-loop
//! tail latency, shed rate, segment-bootstrap cost, the post-crash
//! routing spike and the hedged-fetch tail) must not rise
//! above `baseline * (1 + t)`, higher-is-better metrics (window-memo
//! dedup hits, the batch-aware warm-round lead, overload goodput) must
//! not fall below
//! `baseline * (1 - t)`. Zero-baselines are exact: any stale result served
//! fails outright. Metrics whose table is missing from the *baseline* are
//! reported and skipped (a new experiment lands before its baseline);
//! metrics missing from the *current* run fail (an experiment silently
//! dropped out of the smoke job).

use serde_json::Value;
use std::process::ExitCode;

/// One gated metric: the first table whose title starts with `table`, the
/// row where `key_col == key_val`, the numeric cell in `col`. Metrics are
/// lower-is-better unless `higher_is_better` flips the comparison.
struct Check {
    table: &'static str,
    key_col: &'static str,
    key_val: &'static str,
    col: &'static str,
    higher_is_better: bool,
}

/// Shorthand for the common lower-is-better check.
const fn lower(
    table: &'static str,
    key_col: &'static str,
    key_val: &'static str,
    col: &'static str,
) -> Check {
    Check {
        table,
        key_col,
        key_val,
        col,
        higher_is_better: false,
    }
}

/// A metric that must not *drop* (dedup hits, warm-round lead).
const fn higher(
    table: &'static str,
    key_col: &'static str,
    key_val: &'static str,
    col: &'static str,
) -> Check {
    Check {
        table,
        key_col,
        key_val,
        col,
        higher_is_better: true,
    }
}

const CHECKS: &[Check] = &[
    // E9: the cache-on run must keep paying for itself.
    lower("E9a", "config", "cache on", "rpc_messages"),
    lower("E9a", "config", "cache on", "shard_fetches"),
    lower("E9a", "config", "cache on", "stale_results"),
    // E10: the gossip fleet's traffic and overhead.
    lower("E10a", "config", "gossip on", "rpc_messages"),
    lower("E10a", "config", "gossip on", "dht_shard_fetches"),
    lower("E10a", "config", "gossip on", "gossip_bytes"),
    lower("E10a", "config", "gossip on", "stale_results"),
    // E11: batched execution.
    lower("E11", "config", "batched", "rpc_messages"),
    lower("E11", "config", "batched", "dht_shard_fetches"),
    // E12: the churn/zone fleet under compressed digests.
    lower("E12a", "config", "delta digests", "rpc_messages"),
    lower("E12a", "config", "delta digests", "dht_shard_fetches"),
    lower("E12a", "config", "delta digests", "steady_digest_bytes"),
    lower("E12a", "config", "delta digests", "gossip_bytes_total"),
    lower("E12a", "config", "delta digests", "stale_results"),
    // E13: the pipelined engine's makespan, CPU dedup and gossip lead.
    lower("E13a", "config", "pipelined", "makespan_ms"),
    lower("E13a", "config", "pipelined", "score_invocations"),
    higher("E13a", "config", "pipelined", "memo_hits"),
    // The self-steering pipeline must keep holding the fixed-depth
    // makespan on the unsaturated stream (the ratio row is % of the
    // fixed makespan) and keep beating it on the starved uplink.
    lower(
        "E13a",
        "config",
        "adaptive vs fixed (% of makespan)",
        "makespan_ms",
    ),
    lower("E13c", "config", "adaptive", "makespan_ms"),
    lower(
        "E13c",
        "config",
        "adaptive vs fixed (% of makespan)",
        "makespan_ms",
    ),
    lower("E13c", "config", "adaptive", "queue_delay_ms"),
    higher("E13b", "config", "warm-round lead", "rounds_to_warm"),
    // E14: open-loop admission control. Below saturation the tail must
    // stay bounded and nothing may shed (zero baseline = exact check);
    // above saturation goodput must hold up and shedding must not grow.
    lower("E14a", "load", "0.25x", "p99_ms"),
    lower("E14a", "load", "0.25x", "shed_rate_%"),
    higher("E14a", "load", "4x", "goodput_qps"),
    lower("E14a", "load", "4x", "shed_rate_%"),
    // E15: tracing integrity. The makespan delta between traced and
    // untraced replays has a zero baseline, so any simulated-time overhead
    // from enabling the tracer fails exactly; the attribution regime
    // (queueing-dominated tail at 4x, fetch-dominated below saturation)
    // must not drift.
    lower("E15b", "metric", "tracing_makespan_delta_%", "value"),
    higher("E15a", "load", "4x", "tail_queue_share_%"),
    lower("E15a", "load", "0.25x", "all_queue_share_%"),
    // E12: zone-aware anti-entropy must keep reconciliation traffic from
    // drifting back (the zone-aware run's totals).
    lower(
        "E12a",
        "config",
        "delta + zone budgets + zone-aware AE",
        "stale_results",
    ),
    // E16: segment bootstrap. A joiner importing the artifact converges
    // at round 0 with zero warm-up DHT fetches in the quick scenario —
    // both are exact zero-baseline checks — and the bootstrap byte
    // window must not regress past the threshold.
    lower("E16a", "config", "segment join", "rounds_to_95"),
    lower("E16a", "config", "segment join", "probe_dht_fetches"),
    lower("E16a", "config", "segment join", "bootstrap_bytes"),
    lower("E16a", "config", "segment join", "stale_results"),
    // E17: replica-aware routing + hedged fetches. The post-crash load
    // spike under rendezvous + two-choices must not creep back toward the
    // ring walk's, the hedged tail must stay collapsed, and the wasted
    // hedge bytes (cancelled duplicate RPCs) must stay inside the valve's
    // budget.
    lower(
        "E17a",
        "routing",
        "rendezvous + 2-choices",
        "max_over_fair_share",
    ),
    lower(
        "E12c",
        "routing",
        "rendezvous + 2-choices",
        "max_over_mean_survivor",
    ),
    lower("E17b", "config", "hedged", "p99_us"),
    lower("E17b", "config", "hedged", "hedge_wasted_bytes"),
];

fn load(path: &str) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let json: Value = serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    json.as_array()
        .cloned()
        .ok_or_else(|| format!("{path}: top-level JSON array of tables expected"))
}

/// Find a check's metric in a table dump; `None` when the table or row is
/// absent, `Some(Err)` when present but not numeric.
fn find_metric(tables: &[Value], c: &Check) -> Option<Result<f64, String>> {
    for t in tables {
        let Some(title) = t["title"].as_str() else {
            continue;
        };
        if !title.starts_with(c.table) {
            continue;
        }
        let Some(rows) = t["rows"].as_array() else {
            continue;
        };
        for row in rows {
            if row[c.key_col].as_str() != Some(c.key_val) {
                continue;
            }
            let Some(cell) = row[c.col].as_str() else {
                return Some(Err(format!("column '{}' missing", c.col)));
            };
            return Some(
                cell.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("cell '{cell}' is not numeric")),
            );
        }
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--threshold needs a numeric value");
                return ExitCode::FAILURE;
            };
            threshold = v;
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [--threshold 0.10]");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_gate: {} metrics, regression threshold {:.0}% ({} vs {})",
        CHECKS.len(),
        threshold * 100.0,
        current_path,
        baseline_path
    );
    let mut failures = 0usize;
    let mut skipped = 0usize;
    for c in CHECKS {
        let label = format!("{} [{}] {}", c.table, c.key_val, c.col);
        let base = match find_metric(&baseline, c) {
            None => {
                println!("  SKIP  {label}: not in baseline (new experiment?)");
                skipped += 1;
                continue;
            }
            Some(Err(e)) => {
                println!("  FAIL  {label}: baseline {e}");
                failures += 1;
                continue;
            }
            Some(Ok(v)) => v,
        };
        let cur = match find_metric(&current, c) {
            None => {
                println!("  FAIL  {label}: missing from the current run");
                failures += 1;
                continue;
            }
            Some(Err(e)) => {
                println!("  FAIL  {label}: current {e}");
                failures += 1;
                continue;
            }
            Some(Ok(v)) => v,
        };
        // Zero baselines (stale serves) are exact; everything else gets
        // the relative threshold, inverted for higher-is-better metrics.
        let (limit, regressed) = if c.higher_is_better {
            let limit = base * (1.0 - threshold);
            (limit, cur < limit)
        } else {
            let limit = if base == 0.0 {
                0.0
            } else {
                base * (1.0 + threshold)
            };
            (limit, cur > limit)
        };
        if regressed {
            println!("  FAIL  {label}: {cur} vs baseline {base} (limit {limit:.1})");
            failures += 1;
        } else {
            let delta = if base == 0.0 {
                "±0%".to_string()
            } else {
                format!("{:+.1}%", 100.0 * (cur - base) / base)
            };
            println!("  ok    {label}: {cur} vs {base} ({delta})");
        }
    }
    println!(
        "bench_gate: {} failed, {} skipped, {} checked",
        failures,
        skipped,
        CHECKS.len() - skipped
    );
    if failures > 0 {
        eprintln!(
            "bench_gate: key metrics regressed >{:.0}% against {baseline_path}; \
             if intentional, regenerate the baseline with \
             `cargo run -p qb-bench --release --bin experiments -- --quick e9 e10 e11 e12 e13 e14 e15 e16 e17` \
             and copy bench-results/experiments.json over the baseline file.",
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
