//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p qb-bench --release --bin experiments -- all
//!   cargo run -p qb-bench --release --bin experiments -- e3 e6
//!   cargo run -p qb-bench --release --bin experiments -- --quick e9 e10
//!
//! Each experiment prints a human-readable table and writes the same rows as
//! JSON under `bench-results/`. `--quick` shrinks the cache/gossip/batch
//! streams (E9/E10/E11) for the CI smoke job; E9, E10 and E11 assert their
//! acceptance criteria (cache savings, >=30% gossip RPC reduction, zero
//! staleness, >=30% batched fetch reduction with byte-identical results), so
//! a regression fails the process instead of silently changing a table.

use qb_baseline::{CentralizedConfig, CentralizedEngine, YacyConfig, YacyEngine};
use qb_bench::{build_corpus, build_engine, crawl_docs, f2, f4, publish_corpus, Table};
use qb_chain::AccountId;
use qb_common::{DetRng, LatencyHistogram, SimDuration, SimInstant};
use qb_dweb::WebPage;
use qb_queenbee::{gini_coefficient, CollusionAttack, ScraperAttack};
use qb_workload::{mutate_page, AdvertiserWorkload, QueryWorkload, UpdateStream};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let args: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    let selected: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "e15", "e16", "e17",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    } else {
        args
    };
    let mut all_tables: Vec<Table> = Vec::new();
    for exp in &selected {
        let tables = match exp.as_str() {
            "f1" => f1_architecture(),
            "e1" => e1_latency_throughput(),
            "e2" => e2_resilience(),
            "e3" => e3_freshness(),
            "e4" => e4_tamper(),
            "e5" => e5_incentives(),
            "e6" => e6_collusion(),
            "e7" => e7_scraper(),
            "e8" => e8_systems_costs(),
            "e9" => e9_cache(quick),
            "e10" => e10_gossip(quick),
            "e11" => e11_batch(quick),
            "e12" => e12_churn(quick),
            "e13" => e13_pipeline(quick),
            "e14" => e14_open_loop(quick),
            "e15" => e15_tracing(quick),
            "e16" => e16_segment(quick),
            "e17" => e17_hedging(quick),
            other => {
                eprintln!("unknown experiment '{other}' (use f1, e1..e17 or all)");
                Vec::new()
            }
        };
        for t in &tables {
            print!("{}", t.render());
        }
        all_tables.extend(tables);
    }
    // Machine-readable output.
    let json: Vec<serde_json::Value> = all_tables.iter().map(|t| t.to_json()).collect();
    if std::fs::create_dir_all("bench-results").is_ok() {
        let _ = std::fs::write(
            "bench-results/experiments.json",
            serde_json::to_string_pretty(&json).unwrap_or_default(),
        );
        println!("\n(wrote bench-results/experiments.json)");
    }
}

/// F1 — Figure 1: the QueenBee architecture wired end to end.
fn f1_architecture() -> Vec<Table> {
    let corpus = build_corpus(0xF1, 20);
    let mut qb = build_engine(32, 4, 0xF1);
    let accepted = publish_corpus(&mut qb, &corpus);
    let rank = qb.run_rank_round().expect("rank round");
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xF1);
    let mut answered = 0;
    for q in workload.generate_batch(&corpus, &mut rng, 20) {
        if let Ok(out) = qb.search(3, &q) {
            if !out.results.is_empty() {
                answered += 1;
            }
        }
    }
    let stats = qb.chain.stats();
    let mut t = Table::new(
        "F1: architecture walkthrough (Figure 1) — every component exercised end to end",
        &["component", "evidence"],
    );
    t.row(&[
        "DWeb peers (simnet)".into(),
        format!("{} peers online", qb.net.len()),
    ]);
    t.row(&[
        "Kademlia DHT".into(),
        format!("{} nodes, routing tables populated", qb.dht.len()),
    ]);
    t.row(&[
        "Decentralized storage".into(),
        format!("{accepted} pages stored + replicated"),
    ]);
    t.row(&[
        "Blockchain + contracts".into(),
        format!(
            "height {}, {} ok txs, supply conserved = {}",
            stats.height,
            stats.ok_txs,
            stats.total_supply == qb.config().chain.genesis_supply
        ),
    ]);
    t.row(&[
        "Worker bees".into(),
        format!(
            "{} bees, {} indexing tasks rewarded",
            qb.bees().len(),
            qb.bees().iter().map(|b| b.tasks_rewarded).sum::<u64>()
        ),
    ]);
    t.row(&[
        "PageRank".into(),
        format!(
            "{} rounds, L1 error vs reference {:.2e}",
            rank.rounds, rank.l1_error_vs_reference
        ),
    ]);
    t.row(&[
        "Query frontend".into(),
        format!("{answered}/20 sample queries answered with results"),
    ]);
    vec![t]
}

/// E1 — latency and throughput: decentralized caching vs a central server.
fn e1_latency_throughput() -> Vec<Table> {
    // Part A: page fetch latency as a popular page gets cached by more peers.
    let mut qb = build_engine(64, 6, 0xE1);
    let page = WebPage::new(
        "viral/page",
        "A very popular page",
        (0..300)
            .map(|i| format!("popularword{} ", i % 60))
            .collect::<String>(),
        vec![],
    );
    let report = qb.publish(1, AccountId(1_000), &page).expect("publish");
    qb.seal();
    qb.process_publish_events().expect("index");
    let root = report.object.expect("stored object").root;
    let mut t_a = Table::new(
        "E1a: page fetch latency vs. number of prior fetchers (peer caching effect)",
        &[
            "prior_fetchers",
            "latency_ms",
            "served_from",
            "providers_after",
        ],
    );
    for (fetchers, peer) in [10u64, 15, 20, 25, 30, 35, 40, 45].into_iter().enumerate() {
        let (_, stats) = qb
            .storage
            .get_object(&mut qb.net, &mut qb.dht, peer, root)
            .expect("fetch");
        t_a.row(&[
            fetchers.to_string(),
            f2(stats.latency.as_millis_f64()),
            if stats.from_local {
                "local cache".into()
            } else {
                "remote peers".into()
            },
            qb.storage.pinned_holders(&root).len().to_string(),
        ]);
    }

    // Part B: query latency under increasing load, QueenBee vs centralized.
    let corpus = build_corpus(0xE1B, 80);
    let mut qb = build_engine(64, 6, 0xE1B);
    publish_corpus(&mut qb, &corpus);
    let mut central = CentralizedEngine::new(CentralizedConfig::default());
    central.crawl(&crawl_docs(&corpus, &HashMap::new()), SimInstant::ZERO);
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xE1B);
    let queries = workload.generate_batch(&corpus, &mut rng, 60);
    let mut t_b = Table::new(
        "E1b: query latency and availability vs offered load (centralized capacity = 200 qps)",
        &[
            "load_qps",
            "central_p50_ms",
            "central_ok_%",
            "queenbee_p50_ms",
            "queenbee_ok_%",
        ],
    );
    for load in [10.0, 100.0, 180.0, 250.0, 400.0] {
        let mut central_lat = LatencyHistogram::new();
        let mut central_ok = 0usize;
        let mut qb_lat = LatencyHistogram::new();
        let mut qb_ok = 0usize;
        for (i, q) in queries.iter().enumerate() {
            if let Ok((_, lat)) = central.search(q, load, SimInstant::ZERO) {
                central_lat.record(lat);
                central_ok += 1;
            }
            let peer = (i % 50) as u64;
            if let Ok(out) = qb.search(peer, q) {
                qb_lat.record(out.latency);
                qb_ok += 1;
            }
        }
        t_b.row(&[
            format!("{load:.0}"),
            f2(central_lat.p50().as_millis_f64()),
            f2(100.0 * central_ok as f64 / queries.len() as f64),
            f2(qb_lat.p50().as_millis_f64()),
            f2(100.0 * qb_ok as f64 / queries.len() as f64),
        ]);
    }
    vec![t_a, t_b]
}

/// E2 — resilience against node failures, partitions and DDoS.
fn e2_resilience() -> Vec<Table> {
    let corpus = build_corpus(0xE2, 60);
    let workload = QueryWorkload::new(&corpus);
    let mut t = Table::new(
        "E2: query availability under failures (fraction of peers failed; central server is peer 0)",
        &["failed_fraction", "queenbee_ok_%", "centralized_ok_%"],
    );
    for failed_fraction in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut qb = build_engine(64, 6, 0xE2 + (failed_fraction * 100.0) as u64);
        publish_corpus(&mut qb, &corpus);
        let mut central = CentralizedEngine::new(CentralizedConfig::default());
        central.crawl(&crawl_docs(&corpus, &HashMap::new()), SimInstant::ZERO);
        // Fail peers; bees are not protected (they are ordinary peers).
        let downed = qb.net.fail_fraction(failed_fraction, &[]);
        // The centralized service lives on peer 0: it fails if peer 0 failed.
        central.online = !downed.contains(&0);
        let mut rng = DetRng::new(0xE2);
        let queries = workload.generate_batch(&corpus, &mut rng, 50);
        let mut qb_ok = 0usize;
        let mut central_ok = 0usize;
        for (i, q) in queries.iter().enumerate() {
            // Query from a random online peer.
            let mut peer = (i * 7 % qb.net.len()) as u64;
            let mut tries = 0;
            while !qb.net.is_online(peer) && tries < qb.net.len() {
                peer = (peer + 1) % qb.net.len() as u64;
                tries += 1;
            }
            if qb
                .search(peer, q)
                .map(|o| !o.results.is_empty())
                .unwrap_or(false)
            {
                qb_ok += 1;
            }
            if central.search(q, 10.0, SimInstant::ZERO).is_ok() {
                central_ok += 1;
            }
        }
        t.row(&[
            f2(failed_fraction),
            f2(100.0 * qb_ok as f64 / queries.len() as f64),
            f2(100.0 * central_ok as f64 / queries.len() as f64),
        ]);
    }

    // Partition: split the network in two; the central server is only in one half.
    let mut t_p = Table::new(
        "E2b: behaviour under a network partition (two halves)",
        &["scenario", "queenbee_ok_%", "centralized_ok_%"],
    );
    let mut qb = build_engine(64, 6, 0xE2B);
    publish_corpus(&mut qb, &corpus);
    let mut central = CentralizedEngine::new(CentralizedConfig::default());
    central.crawl(&crawl_docs(&corpus, &HashMap::new()), SimInstant::ZERO);
    let mut rng = DetRng::new(0xE2B);
    let queries = workload.generate_batch(&corpus, &mut rng, 40);
    for (scenario, partitioned) in [("no partition", false), ("2-way partition", true)] {
        if partitioned {
            qb.net.partition_round_robin(2);
        } else {
            qb.net.heal_all();
        }
        let mut qb_ok = 0;
        let mut central_ok = 0;
        for (i, q) in queries.iter().enumerate() {
            let peer = (i % 60) as u64;
            if qb
                .search(peer, q)
                .map(|o| !o.results.is_empty())
                .unwrap_or(false)
            {
                qb_ok += 1;
            }
            // Clients in the other partition cannot reach the central server.
            let reachable = !partitioned || qb.net.partition_of(peer) == qb.net.partition_of(0);
            if reachable && central.search(q, 10.0, SimInstant::ZERO).is_ok() {
                central_ok += 1;
            }
        }
        t_p.row(&[
            scenario.to_string(),
            f2(100.0 * qb_ok as f64 / queries.len() as f64),
            f2(100.0 * central_ok as f64 / queries.len() as f64),
        ]);
    }
    vec![t, t_p]
}

/// E3 — freshness: publish-driven indexing vs crawling.
fn e3_freshness() -> Vec<Table> {
    let corpus = build_corpus(0xE3, 50);
    let mut t = Table::new(
        "E3: result staleness under a continuous update stream (2h of simulated edits)",
        &[
            "system",
            "crawl_interval",
            "stale_results_%",
            "mean_version_lag",
        ],
    );
    // QueenBee: bees index every publish event as it happens.
    let mut qb = build_engine(64, 6, 0xE3);
    publish_corpus(&mut qb, &corpus);
    let stream = UpdateStream::new(&corpus, SimDuration::from_secs(120));
    let mut rng = DetRng::new(0xE3);
    let horizon = SimInstant::ZERO + SimDuration::from_secs(7_200);
    let updates = stream.generate(&mut rng, SimInstant::ZERO, horizon);
    // Track the current version and text of every page for the baselines.
    let mut current: HashMap<String, (u64, String)> = HashMap::new();
    let mut current_pages: HashMap<String, WebPage> = corpus
        .pages
        .iter()
        .map(|p| (p.name.clone(), p.clone()))
        .collect();

    let crawl_intervals = [
        ("30 min", SimDuration::from_secs(1_800)),
        ("2 h", SimDuration::from_secs(7_200)),
        ("6 h", SimDuration::from_secs(21_600)),
    ];
    let mut yacy_engines: Vec<YacyEngine> = crawl_intervals
        .iter()
        .map(|(_, interval)| {
            YacyEngine::new(YacyConfig {
                num_peers: 16,
                crawl_interval: *interval,
                ..YacyConfig::default()
            })
        })
        .collect();
    let mut central_engines: Vec<CentralizedEngine> = crawl_intervals
        .iter()
        .map(|(_, interval)| {
            CentralizedEngine::new(CentralizedConfig {
                crawl_interval: *interval,
                ..CentralizedConfig::default()
            })
        })
        .collect();
    // Initial crawl of the original corpus.
    let initial_docs = crawl_docs(&corpus, &current);
    for e in yacy_engines.iter_mut() {
        e.crawl(&initial_docs, SimInstant::ZERO);
    }
    for e in central_engines.iter_mut() {
        e.crawl(&initial_docs, SimInstant::ZERO);
    }

    let mut last = SimInstant::ZERO;
    for update in &updates {
        qb.advance_time(update.at.since(last));
        last = update.at;
        let page = &current_pages[&corpus.pages[update.page_index].name];
        let new_version = mutate_page(page, update.seq, &mut rng);
        let creator = AccountId(corpus.creators[update.page_index]);
        let peer = (update.page_index % 50) as u64;
        qb.publish(peer, creator, &new_version).expect("republish");
        qb.seal();
        qb.process_publish_events().expect("reindex");
        let registered_version = qb
            .chain
            .publish_registry()
            .get(&new_version.name)
            .map(|r| r.version)
            .unwrap_or(1);
        current.insert(
            new_version.name.clone(),
            (registered_version, new_version.text()),
        );
        current_pages.insert(new_version.name.clone(), new_version);
        // Crawlers wake up on their own schedule.
        let docs = crawl_docs(&corpus, &current);
        for e in yacy_engines.iter_mut() {
            e.maybe_crawl(&docs, update.at);
        }
        for e in central_engines.iter_mut() {
            e.maybe_crawl(&docs, update.at);
        }
    }

    // Measure staleness with grounded queries at the end of the window.
    let workload = QueryWorkload::new(&corpus);
    let queries = workload.generate_batch(&corpus, &mut rng, 80);
    let staleness = |results: &[qb_index::ScoredDoc]| -> (u64, u64, u64) {
        let mut fresh = 0;
        let mut stale = 0;
        let mut lag = 0;
        for r in results {
            let cur = current.get(&r.name).map(|(v, _)| *v).unwrap_or(1);
            if r.version >= cur {
                fresh += 1;
            } else {
                stale += 1;
                lag += cur - r.version;
            }
        }
        (fresh, stale, lag)
    };

    // QueenBee staleness (its probe already tracks every search it serves).
    let mut qb_fresh = 0u64;
    let mut qb_stale = 0u64;
    let mut qb_lag = 0u64;
    for (i, q) in queries.iter().enumerate() {
        if let Ok(out) = qb.search((i % 50) as u64, q) {
            let (f, s, l) = staleness(&out.results);
            qb_fresh += f;
            qb_stale += s;
            qb_lag += l;
        }
    }
    let qb_total = (qb_fresh + qb_stale).max(1);
    t.row(&[
        "QueenBee (publish-driven)".into(),
        "n/a".into(),
        f2(100.0 * qb_stale as f64 / qb_total as f64),
        f4(qb_lag as f64 / qb_total as f64),
    ]);

    let mut measure_net = qb.net; // reuse the simulated network for YaCy RPC latencies
    for (idx, (label, _)) in crawl_intervals.iter().enumerate() {
        let mut fresh = 0u64;
        let mut stale = 0u64;
        let mut lag = 0u64;
        for (i, q) in queries.iter().enumerate() {
            if let Ok((results, _, _)) =
                yacy_engines[idx].search(&mut measure_net, (i % 50) as u64, q)
            {
                let (f, s, l) = staleness(&results);
                fresh += f;
                stale += s;
                lag += l;
            }
        }
        let total = (fresh + stale).max(1);
        t.row(&[
            "YaCy-style (crawling P2P)".into(),
            label.to_string(),
            f2(100.0 * stale as f64 / total as f64),
            f4(lag as f64 / total as f64),
        ]);
    }
    for (idx, (label, _)) in crawl_intervals.iter().enumerate() {
        let mut fresh = 0u64;
        let mut stale = 0u64;
        let mut lag = 0u64;
        for q in &queries {
            if let Ok((results, _)) = central_engines[idx].search(q, 10.0, horizon) {
                let (f, s, l) = staleness(&results);
                fresh += f;
                stale += s;
                lag += l;
            }
        }
        let total = (fresh + stale).max(1);
        t.row(&[
            "Centralized (crawling)".into(),
            label.to_string(),
            f2(100.0 * stale as f64 / total as f64),
            f4(lag as f64 / total as f64),
        ]);
    }
    vec![t]
}

/// E4 — tamper-proof content: detection of corrupted replicas.
fn e4_tamper() -> Vec<Table> {
    let mut t = Table::new(
        "E4: tamper injection on stored replicas (detection = corrupted bytes never served as valid)",
        &["replicas_corrupted", "fetch_outcome", "tampering_served_undetected"],
    );
    for corrupt_all in [false, true] {
        let mut qb = build_engine(48, 4, 0xE4 + corrupt_all as u64);
        let page = WebPage::new(
            "bank/login",
            "Bank login",
            (0..150).map(|i| format!("legit{} ", i)).collect::<String>(),
            vec![],
        );
        let report = qb.publish(1, AccountId(1_000), &page).expect("publish");
        qb.seal();
        let root = report.object.expect("object").root;
        let holders = qb.storage.pinned_holders(&root);
        let to_corrupt = if corrupt_all {
            holders.len()
        } else {
            holders.len() / 2
        };
        for h in holders.iter().take(to_corrupt) {
            qb.storage
                .corrupt_pinned(*h, &root, b"<html>phishing</html>".to_vec());
        }
        let outcome = qb.storage.get_object(&mut qb.net, &mut qb.dht, 30, root);
        let (desc, undetected) = match outcome {
            Ok((bytes, _)) => {
                let served_corrupt = !String::from_utf8_lossy(&bytes).contains("legit0");
                ("served verified original".to_string(), served_corrupt)
            }
            Err(e) => (format!("rejected: {e}"), false),
        };
        t.row(&[
            format!("{to_corrupt}/{}", holders.len()),
            desc,
            if undetected {
                "YES (failure)".into()
            } else {
                "no".into()
            },
        ]);
    }
    vec![t]
}

/// E5 — the incentive scheme: honey flows between stakeholders.
fn e5_incentives() -> Vec<Table> {
    let corpus = build_corpus(0xE5, 60);
    let mut qb = build_engine(64, 6, 0xE5);
    publish_corpus(&mut qb, &corpus);
    qb.run_rank_round().expect("rank round");
    // Advertisers join and users click ads during a query session.
    let ad_workload = AdvertiserWorkload::new(&corpus, 8);
    let mut rng = DetRng::new(0xE5);
    for spec in ad_workload.generate(&corpus, &mut rng) {
        qb.register_advertiser(&spec).expect("campaign");
    }
    let workload = QueryWorkload::new(&corpus);
    let mut clicks = 0;
    for (i, q) in workload
        .generate_batch(&corpus, &mut rng, 150)
        .iter()
        .enumerate()
    {
        if let Ok(out) = qb.search((i % 50) as u64, q) {
            if out.ad.is_some()
                && ad_workload.user_clicks(&mut rng)
                && qb.click_ad(&out).unwrap_or(false)
            {
                clicks += 1;
            }
        }
    }
    // Another rank round pays popularity rewards with the final ranks.
    qb.run_rank_round().expect("second rank round");

    let roles = qb.honey_by_role();
    let mut t = Table::new(
        "E5a: honey distribution by stakeholder after a full economy run",
        &["role", "honey (nectar)", "share_of_circulating_%"],
    );
    let circulating = (roles.total() - roles.treasury).max(1);
    for (role, amount) in [
        ("content creators", roles.creators),
        ("worker bees", roles.bees),
        ("advertisers (unspent)", roles.advertisers),
        ("other (escrow, validators)", roles.other),
    ] {
        t.row(&[
            role.to_string(),
            amount.to_string(),
            f2(100.0 * amount as f64 / circulating as f64),
        ]);
    }
    t.row(&["treasury".into(), roles.treasury.to_string(), "-".into()]);
    t.row(&["ad clicks charged".into(), clicks.to_string(), "-".into()]);

    // Fairness: do rewards track popularity? Compare creator honey with the
    // summed rank of their pages, and report Gini coefficients.
    let mut creator_rank: HashMap<u64, f64> = HashMap::new();
    for p in qb.chain.publish_registry().pages() {
        *creator_rank.entry(p.creator.0).or_insert(0.0) += qb.rank_of(&p.name);
    }
    let creator_balances: Vec<(u64, u64)> = qb
        .creator_accounts()
        .iter()
        .map(|a| (a.0, qb.chain.balance(*a)))
        .collect();
    // Spearman-ish check: correlation between rank mass and balance.
    let n = creator_balances.len() as f64;
    let mean_rank: f64 = creator_rank.values().sum::<f64>() / n.max(1.0);
    let mean_bal: f64 = creator_balances.iter().map(|(_, b)| *b as f64).sum::<f64>() / n.max(1.0);
    let mut cov = 0.0;
    let mut var_r = 0.0;
    let mut var_b = 0.0;
    for (acct, bal) in &creator_balances {
        let r = creator_rank.get(acct).copied().unwrap_or(0.0);
        cov += (r - mean_rank) * (*bal as f64 - mean_bal);
        var_r += (r - mean_rank).powi(2);
        var_b += (*bal as f64 - mean_bal).powi(2);
    }
    let correlation = if var_r > 0.0 && var_b > 0.0 {
        cov / (var_r.sqrt() * var_b.sqrt())
    } else {
        0.0
    };
    let mut t2 = Table::new("E5b: fairness indicators", &["metric", "value"]);
    t2.row(&["creators".into(), creator_balances.len().to_string()]);
    t2.row(&[
        "corr(creator rank mass, creator honey)".into(),
        f2(correlation),
    ]);
    t2.row(&[
        "Gini(creator honey)".into(),
        f2(gini_coefficient(
            &creator_balances.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
        )),
    ]);
    t2.row(&[
        "Gini(bee honey)".into(),
        f2(gini_coefficient(
            &qb.bee_accounts()
                .iter()
                .map(|a| qb.chain.balance(*a))
                .collect::<Vec<_>>(),
        )),
    ]);
    t2.row(&[
        "total supply conserved".into(),
        (qb.chain.accounts().total_supply() == qb.config().chain.genesis_supply).to_string(),
    ]);
    vec![t, t2]
}

/// E6 — collusion attack on index and rank data vs the verification quorum.
fn e6_collusion() -> Vec<Table> {
    let mut t = Table::new(
        "E6: collusion attack (bees boosting 'evil/spam') vs verification quorum",
        &[
            "colluding_fraction",
            "quorum",
            "spam_in_top3_%",
            "rank_inflation_x",
            "colluders_flagged",
            "honey_slashed",
        ],
    );
    let corpus = build_corpus(0xE6, 30);
    for &fraction in &[0.0, 0.25, 0.5] {
        for &quorum in &[1usize, 3] {
            let mut config = qb_queenbee::QueenBeeConfig::small();
            config.num_peers = 48;
            config.num_bees = 8;
            config.index_quorum = quorum;
            config.rank.quorum = quorum;
            config.seed = 0xE6 ^ ((fraction * 100.0) as u64) ^ ((quorum as u64) << 32);
            let mut qb = qb_bench::build_engine_with(config);
            publish_corpus(&mut qb, &corpus);
            // The coalition's page is published like any other page.
            let spam = WebPage::new(
                "evil/spam",
                "Totally legitimate page",
                "buy cheap honey now best deals spam spam",
                vec![],
            );
            qb.publish(1, AccountId(6_000), &spam)
                .expect("publish spam");
            qb.seal();
            let attack = CollusionAttack::new(fraction, vec!["evil/spam".into()]);
            qb.apply_collusion(&attack);
            let stake_before: u64 = qb
                .bee_accounts()
                .iter()
                .map(|a| qb.chain.reward_pool().stake_of(*a))
                .sum();
            qb.process_publish_events().expect("index");
            let honest_rank = {
                // Reference rank of the spam page with no attack: recompute on
                // a clean engine sharing the same registry is costly; instead
                // use the page's rank under quorum defense with 0 colluders as
                // the baseline when fraction == 0.
                qb.run_rank_round().expect("rank").ranks.clone()
            };
            let _ = honest_rank;
            let spam_rank = qb.rank_of("evil/spam");
            let uniform = 1.0 / qb.chain.publish_registry().len().max(1) as f64;
            let workload = QueryWorkload::new(&corpus);
            let mut rng = DetRng::new(0xE6);
            let queries = workload.generate_batch(&corpus, &mut rng, 30);
            let mut spam_hits = 0;
            let mut answered = 0;
            for (i, q) in queries.iter().enumerate() {
                if let Ok(out) = qb.search((i % 40) as u64, q) {
                    answered += 1;
                    if out.results.iter().take(3).any(|r| r.name == "evil/spam") {
                        spam_hits += 1;
                    }
                }
            }
            let stake_after: u64 = qb
                .bee_accounts()
                .iter()
                .map(|a| qb.chain.reward_pool().stake_of(*a))
                .sum();
            let flagged = qb
                .bees()
                .iter()
                .filter(|b| b.times_flagged > 0 && b.is_colluding())
                .count();
            t.row(&[
                f2(fraction),
                quorum.to_string(),
                f2(100.0 * spam_hits as f64 / answered.max(1) as f64),
                f2(spam_rank / uniform),
                format!("{flagged}/{}", attack.colluders(8)),
                (stake_before - stake_after).to_string(),
            ]);
        }
    }
    vec![t]
}

/// E7 — scraper-site attack vs duplicate detection.
fn e7_scraper() -> Vec<Table> {
    let mut t = Table::new(
        "E7: scraper mirrors the 10 most popular pages to capture honey",
        &[
            "duplicate_detection",
            "mirrors_accepted",
            "scraper_honey",
            "original_creators_honey",
        ],
    );
    let corpus = build_corpus(0xE7, 40);
    for dup_detection in [true, false] {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 48;
        config.num_bees = 6;
        config.duplicate_detection = dup_detection;
        config.seed = 0xE7 + dup_detection as u64;
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        qb.run_rank_round().expect("rank");
        // Pick the 10 highest-ranked victim pages.
        let mut ranked: Vec<&WebPage> = corpus.pages.iter().collect();
        ranked.sort_by(|a, b| {
            qb.rank_of(&b.name)
                .partial_cmp(&qb.rank_of(&a.name))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let victims: Vec<WebPage> = ranked.iter().take(10).map(|p| (*p).clone()).collect();
        let scraper_account = 6_666u64;
        let attack = ScraperAttack::new(scraper_account, 10);
        let reports = qb.run_scraper_attack(&attack, &victims).expect("scrape");
        let accepted = reports.iter().filter(|r| r.accepted).count();
        qb.process_publish_events().expect("index");
        qb.run_rank_round().expect("rank after attack");
        let scraper_honey = qb.chain.balance(AccountId(scraper_account));
        let creators_honey: u64 = qb
            .creator_accounts()
            .iter()
            .filter(|a| a.0 != scraper_account)
            .map(|a| qb.chain.balance(*a))
            .sum();
        t.row(&[
            dup_detection.to_string(),
            format!("{accepted}/10"),
            scraper_honey.to_string(),
            creators_honey.to_string(),
        ]);
    }
    vec![t]
}

/// E9 — the query-serving cache: replay a Zipf(1.0) query stream with the
/// cache on vs off and measure the latency / RPC-message / shard-fetch
/// reductions, plus freshness under interleaved republishes.
fn e9_cache(quick: bool) -> Vec<Table> {
    use qb_queenbee::CacheConfig;
    use qb_workload::ZipfSampler;

    let (num_pages, pool_size, stream_len) = if quick { (40, 60, 240) } else { (80, 120, 600) };
    let corpus = build_corpus(0xE9, num_pages);
    let workload = QueryWorkload::new(&corpus);
    // A fixed pool of distinct queries replayed with Zipf(1.0) popularity:
    // the hot head repeats constantly, the tail is mostly one-shot.
    let mut rng = DetRng::new(0xE9);
    let pool = workload.generate_batch(&corpus, &mut rng, pool_size);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(0xE9F);
        (0..stream_len).map(|_| zipf.sample(&mut rng)).collect()
    };

    let run = |cache: CacheConfig| -> (f64, u64, u64, u64, u64, Option<qb_queenbee::CacheMetrics>) {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 64;
        config.num_bees = 6;
        config.seed = 0xE9;
        config.cache = cache;
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        let mut rng = DetRng::new(0xE9A);
        let mut latency = LatencyHistogram::new();
        let mut messages = 0u64;
        let mut shard_fetches = 0u64;
        let mut answered = 0u64;
        for (i, &q) in stream.iter().enumerate() {
            // Every 100 queries a popular page is republished, exercising
            // publish-path invalidation mid-stream.
            if i > 0 && i % 100 == 0 {
                let victim = i / 100 % corpus.pages.len();
                let page = &corpus.pages[victim];
                let updated = mutate_page(page, i as u64, &mut rng);
                let creator = AccountId(corpus.creators[victim]);
                qb.publish((victim % 50) as u64, creator, &updated)
                    .expect("republish");
                qb.seal();
                qb.process_publish_events().expect("reindex");
            }
            qb.advance_time(SimDuration::from_millis(50));
            if let Ok(out) = qb.search((i % 50) as u64, &pool[q]) {
                latency.record(out.latency);
                messages += out.messages;
                shard_fetches += out.shards_fetched as u64;
                answered += 1;
            }
        }
        (
            latency.mean().as_millis_f64(),
            messages,
            shard_fetches,
            answered,
            qb.freshness.stale_results,
            qb.cache_metrics(),
        )
    };

    let (off_lat, off_msgs, off_fetches, off_ok, off_stale, _) = run(CacheConfig::default());
    let (on_lat, on_msgs, on_fetches, on_ok, on_stale, metrics) = run(CacheConfig::enabled());

    // Regression guard for the CI smoke job: the cache must keep paying for
    // itself and must never serve anything stale.
    assert!(
        on_msgs < off_msgs / 2,
        "E9: cache must at least halve RPC messages ({on_msgs} vs {off_msgs})"
    );
    assert_eq!(
        off_stale, 0,
        "E9: uncached engine served {off_stale} stale results"
    );
    assert_eq!(on_stale, 0, "E9: cache served {on_stale} stale results");

    let title = format!(
        "E9a: Zipf(1.0) query stream ({stream_len} queries, {pool_size}-query pool), cache off vs on"
    );
    let mut t = Table::new(
        &title,
        &[
            "config",
            "mean_latency_ms",
            "rpc_messages",
            "shard_fetches",
            "answered",
            "stale_results",
        ],
    );
    t.row(&[
        "cache off".into(),
        f2(off_lat),
        off_msgs.to_string(),
        off_fetches.to_string(),
        off_ok.to_string(),
        off_stale.to_string(),
    ]);
    t.row(&[
        "cache on".into(),
        f2(on_lat),
        on_msgs.to_string(),
        on_fetches.to_string(),
        on_ok.to_string(),
        on_stale.to_string(),
    ]);
    t.row(&[
        "reduction".into(),
        format!("{:.1}x", off_lat / on_lat.max(1e-9)),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - on_msgs as f64 / off_msgs.max(1) as f64)
        ),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - on_fetches as f64 / off_fetches.max(1) as f64)
        ),
        "-".into(),
        "-".into(),
    ]);

    let mut t2 = Table::new(
        "E9b: per-tier cache counters after the stream",
        &[
            "tier",
            "hits",
            "lookups",
            "hit_rate_%",
            "insertions",
            "evictions",
            "invalidations",
        ],
    );
    if let Some(m) = metrics {
        for (name, tier) in qb_queenbee::CacheReport(m).rows() {
            t2.row(&[
                name.to_string(),
                tier.hits.to_string(),
                tier.lookups().to_string(),
                f2(100.0 * tier.hit_rate()),
                tier.insertions.to_string(),
                tier.evictions.to_string(),
                tier.invalidations.to_string(),
            ]);
        }
    }
    vec![t, t2]
}

/// E10 — cooperative cache gossip: N frontends under one shared Zipf(1.0)
/// stream, gossip off vs on. With gossip, one frontend's DHT shard fetch
/// warms the whole fleet, so per-frontend cold starts shrink and aggregate
/// DHT traffic collapses — at a measured gossip byte overhead and with the
/// version guard keeping staleness-served at exactly zero.
fn e10_gossip(quick: bool) -> Vec<Table> {
    use qb_queenbee::{CacheConfig, GossipConfig, GossipStats};
    use qb_workload::ZipfSampler;

    const FLEET: usize = 8;
    /// A frontend's first queries count as its cold-start window.
    const COLD_WINDOW: usize = 5;
    let (num_pages, pool_size, stream_len) = if quick { (40, 60, 240) } else { (80, 120, 600) };
    let corpus = build_corpus(0xE10, num_pages);
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xE10);
    let pool = workload.generate_batch(&corpus, &mut rng, pool_size);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(0xE10F);
        (0..stream_len).map(|_| zipf.sample(&mut rng)).collect()
    };

    struct FleetRun {
        cold_start_ms: f64,
        mean_ms: f64,
        messages: u64,
        shard_fetches: u64,
        stale: u64,
        gossip: Option<GossipStats>,
    }

    let run = |gossip_on: bool| -> FleetRun {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 64;
        config.num_bees = 6;
        config.seed = 0xE10;
        config.cache = CacheConfig::enabled();
        config.gossip = if gossip_on {
            GossipConfig::enabled(FLEET)
        } else {
            GossipConfig::fleet(FLEET)
        };
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        let mut rng = DetRng::new(0xE10A);
        let mut all = LatencyHistogram::new();
        let mut cold: Vec<LatencyHistogram> = (0..FLEET).map(|_| LatencyHistogram::new()).collect();
        let mut served = [0usize; FLEET];
        let mut messages = 0u64;
        let mut shard_fetches = 0u64;
        for (i, &q) in stream.iter().enumerate() {
            // Mid-stream republishes race the gossip rounds: the version
            // guard and publish-path invalidation must keep every served
            // result fresh.
            if i > 0 && i % 100 == 0 {
                let victim = i / 100 % corpus.pages.len();
                let page = &corpus.pages[victim];
                let updated = mutate_page(page, i as u64, &mut rng);
                let creator = AccountId(corpus.creators[victim]);
                qb.publish((20 + victim % 30) as u64, creator, &updated)
                    .expect("republish");
                qb.seal();
                qb.process_publish_events().expect("reindex");
            }
            qb.advance_time(SimDuration::from_millis(50));
            // One shared stream, served round-robin across the fleet.
            let frontend = i % FLEET;
            if let Ok(out) = qb.search_from(frontend, &pool[q]) {
                all.record(out.latency);
                if served[frontend] < COLD_WINDOW {
                    cold[frontend].record(out.latency);
                }
                served[frontend] += 1;
                messages += out.messages;
                shard_fetches += out.shards_fetched as u64;
            }
        }
        FleetRun {
            cold_start_ms: cold.iter().map(|r| r.mean().as_millis_f64()).sum::<f64>()
                / FLEET as f64,
            mean_ms: all.mean().as_millis_f64(),
            messages,
            shard_fetches,
            stale: qb.freshness.stale_results,
            gossip: qb.gossip_stats(),
        }
    };

    let off = run(false);
    let on = run(true);
    let gossip = on.gossip.expect("gossip run has a fleet");

    // Acceptance criteria, asserted so the CI smoke job catches regressions.
    assert_eq!(off.stale, 0, "E10: gossip-off fleet served stale results");
    assert_eq!(on.stale, 0, "E10: gossip-on fleet served stale results");
    assert!(
        (on.shard_fetches as f64) <= 0.7 * off.shard_fetches as f64,
        "E10: gossip must save >=30% of DHT shard fetches ({} vs {})",
        on.shard_fetches,
        off.shard_fetches
    );

    let title = format!(
        "E10a: {FLEET}-frontend fleet on a shared Zipf(1.0) stream ({stream_len} queries), gossip off vs on"
    );
    let mut t = Table::new(
        &title,
        &[
            "config",
            "cold_start_ms",
            "mean_latency_ms",
            "rpc_messages",
            "dht_shard_fetches",
            "gossip_bytes",
            "stale_results",
        ],
    );
    for (label, r, bytes) in [
        ("gossip off", &off, 0u64),
        ("gossip on", &on, gossip.total_bytes()),
    ] {
        t.row(&[
            label.into(),
            f2(r.cold_start_ms),
            f2(r.mean_ms),
            r.messages.to_string(),
            r.shard_fetches.to_string(),
            bytes.to_string(),
            r.stale.to_string(),
        ]);
    }
    t.row(&[
        "reduction".into(),
        format!("{:.1}x", off.cold_start_ms / on.cold_start_ms.max(1e-9)),
        format!("{:.1}x", off.mean_ms / on.mean_ms.max(1e-9)),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - on.messages as f64 / off.messages.max(1) as f64)
        ),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - on.shard_fetches as f64 / off.shard_fetches.max(1) as f64)
        ),
        "-".into(),
        "-".into(),
    ]);

    let mut t2 = Table::new("E10b: gossip overlay counters", &["counter", "value"]);
    for (name, value) in [
        ("rounds (hot-set)", gossip.rounds),
        ("rounds (anti-entropy)", gossip.anti_entropy_rounds),
        ("exchanges ok", gossip.exchanges),
        ("exchanges failed", gossip.failed_exchanges),
        ("fill batches dropped", gossip.failed_fills),
        ("shards pushed", gossip.shards_pushed),
        ("shards accepted", gossip.shards_accepted),
        ("stale fills rejected", gossip.stale_rejected),
        ("duplicate fills skipped", gossip.duplicates_skipped),
        ("digest bytes", gossip.digest_bytes),
        ("fill bytes", gossip.fill_bytes),
    ] {
        t2.row(&[name.to_string(), value.to_string()]);
    }
    vec![t, t2]
}

/// E11 — batched vs sequential execution of the same Zipf(1.0) query
/// stream. A batch window plans every request first, fetches each distinct
/// missing term shard once and fans it out to every query in the window, so
/// concurrent queries sharing hot head terms collapse to one DHT round-trip.
/// The cache is disabled in both runs to isolate the cross-query sharing
/// (the cache covers *repeats over time*; batching covers *concurrency*).
///
/// Reading the latency columns: sequential execution re-fetches hot shards
/// hundreds of times, and every fetch pins more replicas of the backing
/// object on nearby peers (the E1a popularity effect), so its p50 drifts
/// down over the stream. Batching removes exactly those repeat fetches, so
/// each window's queries wait on one colder fetch per term instead —
/// per-query p50 can sit higher while aggregate DHT traffic collapses.
/// With the query cache enabled (every production config), repeats are
/// served locally and this tradeoff disappears; what batching then adds is
/// the cross-query dedup of cold misses measured here.
fn e11_batch(quick: bool) -> Vec<Table> {
    use qb_queenbee::{RoutingPolicy, SearchRequest};
    use qb_workload::ZipfSampler;

    const WINDOW: usize = 32;
    let (num_pages, pool_size, stream_len) = if quick { (40, 60, 256) } else { (80, 120, 640) };
    let corpus = build_corpus(0xE11, num_pages);
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xE11);
    let pool = workload.generate_batch(&corpus, &mut rng, pool_size);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(0xE11F);
        (0..stream_len).map(|_| zipf.sample(&mut rng)).collect()
    };

    let build = || {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 64;
        config.num_bees = 6;
        config.seed = 0xE11;
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        qb
    };
    let request = |i: usize, q: usize| {
        SearchRequest::new(pool[q].as_str()).route(RoutingPolicy::HashPeer((i % 50) as u64))
    };

    struct RunStats {
        latency: LatencyHistogram,
        messages: u64,
        fetches: u64,
        shared: u64,
        hits: Vec<Vec<qb_index::ScoredDoc>>,
    }
    let tally = |responses: Vec<qb_queenbee::SearchResponse>, run: &mut RunStats| {
        for resp in responses {
            run.latency.record(resp.latency);
            run.messages += resp.messages();
            run.fetches += resp.shards_fetched() as u64;
            run.shared += resp.batch_shared() as u64;
            run.hits.push(resp.hits);
        }
    };

    // Sequential: every query is its own window of one.
    let mut seq = RunStats {
        latency: LatencyHistogram::new(),
        messages: 0,
        fetches: 0,
        shared: 0,
        hits: Vec::new(),
    };
    let mut qb = build();
    for (i, &q) in stream.iter().enumerate() {
        qb.advance_time(SimDuration::from_millis(50));
        let resp = qb.search_request(request(i, q)).expect("sequential query");
        tally(vec![resp], &mut seq);
    }

    // Batched: the same stream in windows of `WINDOW` concurrent queries.
    let mut batch = RunStats {
        latency: LatencyHistogram::new(),
        messages: 0,
        fetches: 0,
        shared: 0,
        hits: Vec::new(),
    };
    let mut qb = build();
    for (w, window) in stream.chunks(WINDOW).enumerate() {
        qb.advance_time(SimDuration::from_millis(50));
        let requests: Vec<_> = window
            .iter()
            .enumerate()
            .map(|(j, &q)| request(w * WINDOW + j, q))
            .collect();
        let responses = qb.search_batch(requests).expect("batch window");
        tally(responses, &mut batch);
    }

    // Acceptance criteria, asserted so the CI smoke job catches regressions:
    // batching must save >=30% of DHT shard fetches and cut total RPC
    // messages, without changing a single result byte.
    assert_eq!(seq.hits.len(), batch.hits.len());
    for (i, (a, b)) in seq.hits.iter().zip(&batch.hits).enumerate() {
        assert_eq!(
            a, b,
            "E11: query {i} ('{}') must rank identically in both runs",
            pool[stream[i]]
        );
    }
    assert!(
        (batch.fetches as f64) <= 0.7 * seq.fetches as f64,
        "E11: batching must save >=30% of DHT shard fetches ({} vs {})",
        batch.fetches,
        seq.fetches
    );
    assert!(
        batch.messages < seq.messages,
        "E11: batching must cut total RPC messages ({} vs {})",
        batch.messages,
        seq.messages
    );

    let title = format!(
        "E11: batched (window {WINDOW}) vs sequential execution of one Zipf(1.0) stream \
         ({stream_len} queries, {pool_size}-query pool, cache off)"
    );
    let mut t = Table::new(
        &title,
        &[
            "config",
            "p50_ms",
            "p99_ms",
            "rpc_messages",
            "dht_shard_fetches",
            "window_shared_shards",
        ],
    );
    for (label, run) in [("sequential", &seq), ("batched", &batch)] {
        t.row(&[
            label.into(),
            f2(run.latency.p50().as_millis_f64()),
            f2(run.latency.p99().as_millis_f64()),
            run.messages.to_string(),
            run.fetches.to_string(),
            run.shared.to_string(),
        ]);
    }
    t.row(&[
        "reduction".into(),
        format!(
            "{:.1}x",
            seq.latency.p50().as_millis_f64() / batch.latency.p50().as_millis_f64().max(1e-9)
        ),
        format!(
            "{:.1}x",
            seq.latency.p99().as_millis_f64() / batch.latency.p99().as_millis_f64().max(1e-9)
        ),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - batch.messages as f64 / seq.messages.max(1) as f64)
        ),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - batch.fetches as f64 / seq.fetches.max(1) as f64)
        ),
        "-".into(),
    ]);
    vec![t]
}

/// E12 — the gossip overlay at fleet scale, under churn and latency zones.
/// A 16-frontend (32 in full mode) fleet spread over 4 latency zones serves
/// a shared Zipf(1.0) stream with mid-stream republishes while frontends
/// crash, restart and join. Two runs compare the digest encodings: full
/// hot-set digests (the PR 2 protocol) vs delta digests + holdings filter.
///
/// Asserted acceptance criteria (the CI smoke job runs this quick):
/// * steady-state gossip digest bytes drop >= 5x under delta digests,
/// * a newly joined frontend reaches >= 80% of the fleet's steady-state
///   cache hit rate within 3 gossip rounds of its bootstrap exchange —
///   warmed by the fleet, never by direct DHT pre-warming,
/// * stale results served stay exactly 0 through all the churn.
fn e12_churn(quick: bool) -> Vec<Table> {
    use qb_queenbee::{CacheConfig, DigestMode, GossipConfig};
    use qb_simnet::NetConfig;
    use qb_workload::ZipfSampler;

    const ZONES: usize = 4;
    const JOIN_PROBES: usize = 30;
    const JOIN_ROUNDS: usize = 3;
    let fleet_n: usize = if quick { 16 } else { 32 };
    let (num_pages, pool_size, warm_len, steady_len, churn_len) = if quick {
        (40, 60, 160, 160, 96)
    } else {
        (80, 120, 400, 400, 240)
    };

    struct ChurnRun {
        steady_digest_bytes: u64,
        steady_membership_bytes: u64,
        gossip_bytes: u64,
        messages: u64,
        shard_fetches: u64,
        stale: u64,
        steady_hit_rate: f64,
        joined_hit_rate: f64,
        mean_ms: f64,
        stats: qb_queenbee::GossipStats,
        peer_down_events: u64,
        peer_up_events: u64,
    }

    let corpus = build_corpus(0xE12, num_pages);
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xE12);
    let pool = workload.generate_batch(&corpus, &mut rng, pool_size);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(0xE12F);
        (0..warm_len + steady_len + churn_len)
            .map(|_| zipf.sample(&mut rng))
            .collect()
    };
    let probes: Vec<usize> = {
        let mut rng = DetRng::new(0xE12B);
        (0..JOIN_PROBES).map(|_| zipf.sample(&mut rng)).collect()
    };

    let run = |mode: DigestMode, zone_budgets: bool, zone_aware_ae: bool| -> ChurnRun {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = if quick { 64 } else { 96 };
        config.num_bees = 6;
        config.seed = 0xE12;
        config.net = NetConfig::zoned(ZONES, 2_000, 40_000);
        config.cache = CacheConfig::enabled();
        config.gossip = GossipConfig::enabled_zoned(fleet_n, ZONES);
        config.gossip.digest_mode = mode;
        config.gossip.zone_fill_budgets = zone_budgets;
        config.gossip.zone_aware_anti_entropy = zone_aware_ae;
        // The periodic full-digest safety net stays on in both runs, paced
        // for a steady fleet (the default 2s is tuned for small partition
        // tests; at 40 regular rounds per anti-entropy sweep the exact
        // reconciliation still bounds any compression-delayed fill).
        config.gossip.anti_entropy_interval = SimDuration::from_secs(8);
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);

        let mut rng = DetRng::new(0xE12A);
        let mut latency = LatencyHistogram::new();
        let mut messages = 0u64;
        let mut shard_fetches = 0u64;
        let mut steady_hits = 0u64;
        let mut steady_served = 0u64;
        let mut steady_window = (0u64, 0u64); // (digest, membership) bytes at window start
        let mut crashed: Vec<usize> = Vec::new();

        for (i, &q) in stream.iter().enumerate() {
            // Mid-stream republishes race the gossip rounds and the churn:
            // the version guard and publish-path invalidation must keep
            // every served result fresh even on frontends that missed the
            // publish while crashed.
            if i > 0 && i % 100 == 0 {
                let victim = i / 100 % corpus.pages.len();
                let page = &corpus.pages[victim];
                let updated = mutate_page(page, i as u64, &mut rng);
                let creator = AccountId(corpus.creators[victim]);
                qb.publish((fleet_n + 2 + victim % 8) as u64, creator, &updated)
                    .expect("republish");
                qb.seal();
                qb.process_publish_events().expect("reindex");
            }
            if i == warm_len {
                let g = qb.gossip_stats().expect("fleet");
                steady_window = (g.digest_bytes, g.membership_bytes);
            }
            if i == warm_len + steady_len {
                // Close the steady-state measurement window, then churn:
                // two frontends crash mid-stream...
                let g = qb.gossip_stats().expect("fleet");
                steady_window = (
                    g.digest_bytes - steady_window.0,
                    g.membership_bytes - steady_window.1,
                );
                for &f in &[2usize, 9] {
                    qb.fleet_leave(f, false).expect("crash");
                    crashed.push(f);
                }
            }
            if i == warm_len + steady_len + churn_len / 2 {
                // ...and one of them restarts, warming from the fleet.
                qb.fleet_rejoin(crashed[0]).expect("rejoin");
            }
            qb.advance_time(SimDuration::from_millis(50));
            // One shared stream, served round-robin across the live fleet.
            let actives: Vec<usize> = (0..qb.num_frontends())
                .filter(|&f| qb.fleet().expect("fleet").is_active(f))
                .collect();
            let frontend = actives[i % actives.len()];
            if let Ok(out) = qb.search_from(frontend, &pool[q]) {
                latency.record(out.latency);
                messages += out.messages;
                shard_fetches += out.shards_fetched as u64;
                if (warm_len..warm_len + steady_len).contains(&i) {
                    steady_served += 1;
                    if out.shards_fetched == 0 {
                        steady_hits += 1;
                    }
                }
            }
        }

        // A brand-new frontend joins: one bootstrap anti-entropy exchange
        // with a live neighbour, then exactly JOIN_ROUNDS gossip rounds.
        // No DHT pre-warming of any kind.
        let joined = qb.fleet_join().expect("join");
        for _ in 0..JOIN_ROUNDS {
            qb.advance_time(qb.config().gossip.round_interval);
        }
        let mut joined_hits = 0u64;
        for &q in &probes {
            if let Ok(out) = qb.search_from(joined, &pool[q]) {
                messages += out.messages;
                shard_fetches += out.shards_fetched as u64;
                if out.shards_fetched == 0 {
                    joined_hits += 1;
                }
            }
        }

        let stats = qb.gossip_stats().expect("fleet");
        ChurnRun {
            steady_digest_bytes: steady_window.0,
            steady_membership_bytes: steady_window.1,
            gossip_bytes: stats.total_bytes(),
            messages,
            shard_fetches,
            stale: qb.freshness.stale_results,
            steady_hit_rate: steady_hits as f64 / steady_served.max(1) as f64,
            joined_hit_rate: joined_hits as f64 / probes.len().max(1) as f64,
            mean_ms: latency.mean().as_millis_f64(),
            stats,
            peer_down_events: qb.net.stats().peer_down_events,
            peer_up_events: qb.net.stats().peer_up_events,
        }
    };

    let full = run(DigestMode::Full, false, false);
    let delta = run(DigestMode::Delta, false, false);
    let zoned = run(DigestMode::Delta, true, false);
    let aware = run(DigestMode::Delta, true, true);

    // Acceptance criteria, asserted so the CI smoke job catches regressions.
    assert_eq!(full.stale, 0, "E12: full-digest run served stale results");
    assert_eq!(delta.stale, 0, "E12: delta-digest run served stale results");
    assert_eq!(zoned.stale, 0, "E12: zone-budget run served stale results");
    assert_eq!(
        aware.stale, 0,
        "E12: zone-aware AE run served stale results"
    );
    // Zone-aware anti-entropy redirects reconciliation fills onto in-zone
    // links whenever an in-zone member provably covers the gap — the
    // cross-zone slice of anti-entropy fill bytes must drop, and the exact
    // safety net must stay intact (hit rates undented, zero staleness).
    assert!(
        aware.stats.anti_entropy_cross_zone_fill_bytes
            < zoned.stats.anti_entropy_cross_zone_fill_bytes,
        "E12: zone-aware anti-entropy must cut cross-zone reconciliation \
         bytes ({} vs {})",
        aware.stats.anti_entropy_cross_zone_fill_bytes,
        zoned.stats.anti_entropy_cross_zone_fill_bytes
    );
    assert!(
        aware.steady_hit_rate >= 0.9 * zoned.steady_hit_rate,
        "E12: zone-aware anti-entropy must not dent the steady-state hit \
         rate ({:.2} vs {:.2})",
        aware.steady_hit_rate,
        zoned.steady_hit_rate
    );
    assert!(
        zoned.stats.cross_zone_fill_bytes < delta.stats.cross_zone_fill_bytes,
        "E12: zone-aware fill budgets must cut cross-zone fill bytes ({} vs {})",
        zoned.stats.cross_zone_fill_bytes,
        delta.stats.cross_zone_fill_bytes
    );
    assert!(
        zoned.steady_hit_rate >= 0.9 * delta.steady_hit_rate,
        "E12: zone budgets must not dent the steady-state hit rate \
         ({:.2} vs {:.2})",
        zoned.steady_hit_rate,
        delta.steady_hit_rate
    );
    assert!(
        full.steady_digest_bytes >= 5 * delta.steady_digest_bytes.max(1),
        "E12: delta digests must cut steady-state digest bytes >=5x ({} vs {})",
        delta.steady_digest_bytes,
        full.steady_digest_bytes
    );
    assert!(
        delta.joined_hit_rate >= 0.8 * delta.steady_hit_rate,
        "E12: a joined frontend must reach >=80% of steady-state hit rate \
         within {JOIN_ROUNDS} rounds ({:.2} vs steady {:.2})",
        delta.joined_hit_rate,
        delta.steady_hit_rate
    );

    let title = format!(
        "E12a: {fleet_n}-frontend fleet over {ZONES} latency zones under churn \
         ({} queries, 2 crashes + 1 restart + 1 join), full vs delta digests",
        stream.len()
    );
    let mut t = Table::new(
        &title,
        &[
            "config",
            "steady_digest_bytes",
            "gossip_bytes_total",
            "rpc_messages",
            "dht_shard_fetches",
            "mean_latency_ms",
            "stale_results",
        ],
    );
    for (label, r) in [
        ("full digests", &full),
        ("delta digests", &delta),
        ("delta + zone budgets", &zoned),
        ("delta + zone budgets + zone-aware AE", &aware),
    ] {
        t.row(&[
            label.into(),
            r.steady_digest_bytes.to_string(),
            r.gossip_bytes.to_string(),
            r.messages.to_string(),
            r.shard_fetches.to_string(),
            f2(r.mean_ms),
            r.stale.to_string(),
        ]);
    }
    t.row(&[
        "reduction".into(),
        format!(
            "{:.1}x",
            full.steady_digest_bytes as f64 / delta.steady_digest_bytes.max(1) as f64
        ),
        format!(
            "{:.1}x",
            full.gossip_bytes as f64 / delta.gossip_bytes.max(1) as f64
        ),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    let mut t2 = Table::new(
        "E12b: churn, membership and join warm-up (delta-digest run)",
        &["metric", "value"],
    );
    for (name, value) in [
        ("frontends (initial)", fleet_n as u64),
        ("crashes", delta.stats.crashes),
        ("restarts + joins", delta.stats.joins),
        ("view evictions", delta.stats.evictions),
        ("view revivals", delta.stats.revivals),
        ("peer down events (simnet)", delta.peer_down_events),
        ("peer up events (simnet)", delta.peer_up_events),
        (
            "membership bytes (steady window)",
            delta.steady_membership_bytes,
        ),
        ("anti-entropy rounds", delta.stats.anti_entropy_rounds),
    ] {
        t2.row(&[name.to_string(), value.to_string()]);
    }
    t2.row(&["steady-state hit rate".into(), f2(delta.steady_hit_rate)]);
    t2.row(&[
        format!("joined frontend hit rate (after {JOIN_ROUNDS} rounds)"),
        f2(delta.joined_hit_rate),
    ]);
    t2.row(&[
        "joined / steady ratio".into(),
        f2(delta.joined_hit_rate / delta.steady_hit_rate.max(1e-9)),
    ]);
    // Fill-byte zone split: what the zone-aware budgets move off the
    // expensive cross-zone links (flat-budget run vs zone-budget run).
    for (name, value) in [
        (
            "fill bytes intra-zone (flat budget)",
            delta.stats.intra_zone_fill_bytes,
        ),
        (
            "fill bytes cross-zone (flat budget)",
            delta.stats.cross_zone_fill_bytes,
        ),
        (
            "fill bytes intra-zone (zone budgets)",
            zoned.stats.intra_zone_fill_bytes,
        ),
        (
            "fill bytes cross-zone (zone budgets)",
            zoned.stats.cross_zone_fill_bytes,
        ),
    ] {
        t2.row(&[name.to_string(), value.to_string()]);
    }
    t2.row(&[
        "cross-zone fill reduction".into(),
        format!(
            "{:.1}x",
            delta.stats.cross_zone_fill_bytes as f64
                / zoned.stats.cross_zone_fill_bytes.max(1) as f64
        ),
    ]);
    t2.row(&[
        "steady-state hit rate (zone budgets)".into(),
        f2(zoned.steady_hit_rate),
    ]);
    // Zone-aware anti-entropy: the reconciliation slice of the fill bytes
    // moved onto in-zone links (coverage confirmed against the partner's
    // advertised holdings + filter, so the exact safety net is unweakened).
    for (name, value) in [
        (
            "anti-entropy fill bytes (zone budgets)",
            zoned.stats.anti_entropy_fill_bytes,
        ),
        (
            "anti-entropy cross-zone fill bytes (zone budgets)",
            zoned.stats.anti_entropy_cross_zone_fill_bytes,
        ),
        (
            "anti-entropy fill bytes (zone-aware AE)",
            aware.stats.anti_entropy_fill_bytes,
        ),
        (
            "anti-entropy cross-zone fill bytes (zone-aware AE)",
            aware.stats.anti_entropy_cross_zone_fill_bytes,
        ),
    ] {
        t2.row(&[name.to_string(), value.to_string()]);
    }
    t2.row(&[
        "anti-entropy cross-zone fill reduction".into(),
        format!(
            "{:.1}x",
            zoned.stats.anti_entropy_cross_zone_fill_bytes as f64
                / aware.stats.anti_entropy_cross_zone_fill_bytes.max(1) as f64
        ),
    ]);
    t2.row(&[
        "steady-state hit rate (zone-aware AE)".into(),
        f2(aware.steady_hit_rate),
    ]);

    // ----- E12c: where does a crashed frontend's keyspace land? ---------------------
    //
    // The churn runs above measure gossip cost; this closes the routing
    // blind spot: per-frontend admitted-query counts across a crash
    // window, under the seed's ring-successor walk vs rendezvous +
    // two-choices. The ring walk hands the victim's whole keyspace to
    // one successor; rendezvous spreads it across every survivor.
    let t3 = {
        use qb_load::{replay, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
        use qb_queenbee::AdmissionConfig;

        const E12C_VICTIM: usize = 2;
        let e12c_fleet: usize = 8;
        let make_trace = |seed: u64, secs: u64| {
            ArrivalTrace::generate(
                &corpus,
                &TraceConfig {
                    seed,
                    duration: SimDuration::from_secs(secs),
                    base_qps: 100.0,
                    shape: RateShape::Constant,
                    pool_size: 48,
                    ..TraceConfig::default()
                },
            )
        };
        let warm_trace = make_trace(0xE12C0, 1);
        let crash_trace = make_trace(0xE12C1, if quick { 2 } else { 4 });

        let run_routing = |ring: bool| -> (Vec<u64>, f64) {
            let mut config = qb_queenbee::QueenBeeConfig::small();
            config.num_peers = 64;
            config.num_bees = 6;
            config.seed = 0xE12C;
            config.net = NetConfig::zoned(ZONES, 2_000, 40_000);
            config.cache = CacheConfig::enabled();
            config.gossip = GossipConfig::enabled_zoned(e12c_fleet, ZONES);
            config.admission = AdmissionConfig::enabled();
            config.admission.queue_capacity = 128;
            config.admission.shed_threshold = SimDuration::from_secs(5);
            let mut qb = qb_bench::build_engine_with(config);
            publish_corpus(&mut qb, &corpus);
            let replay_cfg = ReplayConfig {
                seed: 0xE12CF,
                fresh_fraction: 0.5,
                top_k: 5,
                ring_successor_routing: ring,
            };
            replay(&mut qb, &warm_trace, &replay_cfg).expect("warm-up replay");
            qb.fleet_leave(E12C_VICTIM, false).expect("crash");
            let report = replay(&mut qb, &crash_trace, &replay_cfg).expect("crash replay");
            let per = report.admitted_per_frontend.clone();
            let max = per.iter().copied().max().unwrap_or(0) as f64;
            let mean = report.admitted as f64 / (e12c_fleet - 1) as f64;
            (per, max / mean.max(1e-9))
        };
        let (ring_admitted, ring_ratio) = run_routing(true);
        let (hrw_admitted, hrw_ratio) = run_routing(false);

        assert_eq!(
            ring_admitted[E12C_VICTIM], 0,
            "E12c: crashed frontend must admit nothing"
        );
        assert_eq!(
            hrw_admitted[E12C_VICTIM], 0,
            "E12c: crashed frontend must admit nothing"
        );
        assert!(
            hrw_ratio <= ring_ratio,
            "E12c: rendezvous max/mean survivor load ({hrw_ratio:.2}) must not \
             exceed the ring walk's ({ring_ratio:.2})"
        );

        let mut t3 = Table::new(
            &format!(
                "E12c: crash-window admitted queries per frontend \
                 ({e12c_fleet} frontends, frontend {E12C_VICTIM} crashes after warm-up)"
            ),
            &[
                "routing",
                "admitted_per_frontend",
                "max_admitted",
                "max_over_mean_survivor",
            ],
        );
        for (label, per, ratio) in [
            ("ring successor (seed)", &ring_admitted, ring_ratio),
            ("rendezvous + 2-choices", &hrw_admitted, hrw_ratio),
        ] {
            t3.row(&[
                label.into(),
                format!("{per:?}"),
                per.iter().copied().max().unwrap_or(0).to_string(),
                f2(ratio),
            ]);
        }
        t3.row(&[
            "imbalance reduction".into(),
            "-".into(),
            "-".into(),
            format!("{:.1}x", ring_ratio / hrw_ratio.max(1e-9)),
        ]);
        t3
    };
    vec![t, t2, t3]
}

/// E13 — the pipelined query engine. Part A replays a duplicate-heavy
/// Zipf(1.2) stream three ways on identical engines (cache off, so the
/// pipeline's own mechanisms are isolated): **sequentially** (windows of
/// one — the byte-identity reference), **back-to-back** (PR 3's
/// `search_batch` windows, makespan = the sum of window latencies) and
/// **pipelined** (`search_pipelined`: up to 4 windows in flight, window
/// N+1's fetches issued while window N's are pending under the simulated
/// per-link in-flight limits, duplicates deduped by the version-tagged
/// window memo).
///
/// Part B measures batch-aware gossip: a frontend fleet where frontend 0's
/// digest hot set is saturated by genuinely popular terms serves one batch
/// window of *cold* queries; without batch adverts the window's freshly
/// fetched shards sit below the popularity cut and never ride a regular
/// round, while with them the keys lead the very next round's digest and
/// fill order.
///
/// Asserted acceptance criteria (the CI smoke job runs this quick):
/// * pipelined makespan ≤ 70% of back-to-back on the same stream,
/// * per-query hits byte-identical to sequential execution,
/// * window-memo dedup hits > 0 and strictly fewer intersect/score
///   invocations than back-to-back,
/// * batch-aware gossip warms a non-serving frontend ≥ 1 round earlier
///   than the PR 4 baseline.
fn e13_pipeline(quick: bool) -> Vec<Table> {
    use qb_queenbee::{PipelineConfig, RoutingPolicy, SearchRequest, TermProvenance};
    use qb_workload::ZipfSampler;

    const WINDOW: usize = 16;
    const DEPTH: usize = 4;
    let (num_pages, pool_size, stream_len) = if quick { (30, 24, 192) } else { (60, 48, 512) };
    let corpus = build_corpus(0xE13, num_pages);
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xE13);
    let pool = workload.generate_batch(&corpus, &mut rng, pool_size);
    // Zipf(1.2) over a small pool: windows are duplicate-heavy by design.
    let zipf = ZipfSampler::new(pool.len(), 1.2);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(0xE13F);
        (0..stream_len).map(|_| zipf.sample(&mut rng)).collect()
    };
    let build = || {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 64;
        config.num_bees = 6;
        config.seed = 0xE13;
        if quick {
            // The quick stream is too short to fill the default 8-deep
            // per-link budget, which left queue_delay pinned at 0.00 and the
            // link-contention path untested in CI. Two in-flight ops per
            // link make the smaller stream contend like the full one.
            config.net.max_in_flight_per_link = 2;
        }
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        qb
    };
    let request = |i: usize, q: usize| {
        SearchRequest::new(pool[q].as_str()).route(RoutingPolicy::HashPeer((i % 50) as u64))
    };

    // Sequential reference: per-query execution, the byte-identity oracle.
    let mut qb = build();
    let mut seq_hits: Vec<Vec<qb_index::ScoredDoc>> = Vec::new();
    let mut seq_makespan = SimDuration::ZERO;
    for (i, &q) in stream.iter().enumerate() {
        let resp = qb.search_request(request(i, q)).expect("sequential query");
        seq_makespan += resp.latency;
        seq_hits.push(resp.hits);
    }
    let seq_invocations = qb.query_stats().score_invocations;

    // Back-to-back windows: the PR 3 batch path, one window at a time.
    let mut qb = build();
    let mut b2b_makespan = SimDuration::ZERO;
    let mut b2b_messages = 0u64;
    let mut b2b_fetches = 0u64;
    for (w, window) in stream.chunks(WINDOW).enumerate() {
        let requests: Vec<_> = window
            .iter()
            .enumerate()
            .map(|(j, &q)| request(w * WINDOW + j, q))
            .collect();
        let responses = qb.search_batch(requests).expect("batch window");
        b2b_makespan +=
            qb_simnet::parallel_latency(&responses.iter().map(|r| r.latency).collect::<Vec<_>>());
        for r in &responses {
            b2b_messages += r.messages();
            b2b_fetches += r.shards_fetched() as u64;
        }
    }
    let b2b_invocations = qb.query_stats().score_invocations;

    // Pipelined: the same stream through the overlapping-window engine.
    let mut qb = build();
    let requests: Vec<_> = stream
        .iter()
        .enumerate()
        .map(|(i, &q)| request(i, q))
        .collect();
    let outcome = qb
        .search_pipelined(
            requests,
            PipelineConfig {
                window_size: WINDOW,
                max_windows_in_flight: DEPTH,
                ..PipelineConfig::default()
            },
        )
        .expect("pipelined stream");
    let pipe_messages: u64 = outcome.responses.iter().map(|r| r.messages()).sum();
    let pipe_fetches: u64 = outcome
        .responses
        .iter()
        .map(|r| r.shards_fetched() as u64)
        .sum();
    let report = outcome.report;
    let pipe_invocations = qb.query_stats().score_invocations;

    // Acceptance criteria, asserted so the CI smoke job catches regressions.
    assert_eq!(seq_hits.len(), outcome.responses.len());
    for (i, (seq, resp)) in seq_hits.iter().zip(&outcome.responses).enumerate() {
        assert_eq!(
            seq, &resp.hits,
            "E13: query {i} ('{}') must rank identically pipelined vs sequential",
            pool[stream[i]]
        );
    }
    assert!(
        report.makespan.as_micros() as f64 <= 0.7 * b2b_makespan.as_micros() as f64,
        "E13: pipelining must cut makespan >=30% ({} vs {b2b_makespan})",
        report.makespan
    );
    assert!(
        report.memo_hits > 0,
        "E13: the duplicate-heavy stream must produce window-memo hits"
    );
    assert!(
        pipe_invocations < b2b_invocations,
        "E13: the memo must cut intersect/score invocations ({pipe_invocations} vs {b2b_invocations})"
    );
    if quick {
        assert!(
            report.queue_delay > SimDuration::ZERO,
            "E13: the quick stream must exercise per-link queueing (queue_delay stuck at 0 \
             means the tightened in-flight budget stopped biting)"
        );
    }

    // Self-steering pipeline: same stream and base knobs, with the
    // adaptive controller steering depth/window/issue-order from the
    // observed queue-delay share.
    let mut qb = build();
    let requests: Vec<_> = stream
        .iter()
        .enumerate()
        .map(|(i, &q)| request(i, q))
        .collect();
    let adaptive = qb
        .search_pipelined(
            requests,
            PipelineConfig {
                window_size: WINDOW,
                max_windows_in_flight: DEPTH,
                ..PipelineConfig::self_steering()
            },
        )
        .expect("adaptive pipelined stream");
    let adaptive_messages: u64 = adaptive.responses.iter().map(|r| r.messages()).sum();
    let adaptive_fetches: u64 = adaptive
        .responses
        .iter()
        .map(|r| r.shards_fetched() as u64)
        .sum();
    let adaptive_invocations = qb.query_stats().score_invocations;
    let adaptive_report = adaptive.report;
    for (i, (seq, resp)) in seq_hits.iter().zip(&adaptive.responses).enumerate() {
        assert_eq!(
            seq, &resp.hits,
            "E13: query {i} ('{}') must rank identically adaptive vs sequential",
            pool[stream[i]]
        );
    }
    // The controller must never lose to the fixed pipeline it steers:
    // below saturation it converges to the fixed configuration (identical
    // schedule), under saturation its back-off and shortest-first issue
    // only reorder work the link budget was already serializing.
    let adaptive_vs_fixed = 100.0 * adaptive_report.makespan.as_micros() as f64
        / report.makespan.as_micros().max(1) as f64;
    assert!(
        adaptive_vs_fixed <= 100.5,
        "E13: the self-steering pipeline must hold or improve the fixed-depth makespan \
         ({} vs {}, {adaptive_vs_fixed:.1}%)",
        adaptive_report.makespan,
        report.makespan
    );

    // ----- Part C: self-steering on a starved uplink --------------------------------
    // Every query routes through the same origin peer, whose uplink admits
    // a single in-flight operation: the link — not the reads — dominates,
    // and the controller must steer (grow windows so each query shares
    // more deduped fetches) where the fixed pipeline can only queue.
    let overload_build = || {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 64;
        config.num_bees = 6;
        config.seed = 0xE13;
        config.net.max_in_flight_per_link = 1;
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        qb
    };
    let overload_run = |adaptive: bool| {
        let mut qb = overload_build();
        let requests: Vec<_> = stream
            .iter()
            .map(|&q| SearchRequest::new(pool[q].as_str()).route(RoutingPolicy::HashPeer(7)))
            .collect();
        qb.search_pipelined(
            requests,
            PipelineConfig {
                window_size: WINDOW,
                max_windows_in_flight: DEPTH,
                adaptive,
                ..PipelineConfig::default()
            },
        )
        .expect("overload stream")
    };
    let fixed_overload = overload_run(false);
    let adaptive_overload = overload_run(true);
    for (i, (fixed, ad)) in fixed_overload
        .responses
        .iter()
        .zip(&adaptive_overload.responses)
        .enumerate()
    {
        assert_eq!(
            &fixed.hits, &ad.hits,
            "E13c: query {i} must rank identically adaptive vs fixed on the starved uplink"
        );
    }
    assert!(
        adaptive_overload.report.adapt_backoffs > 0,
        "E13c: the starved uplink must trip the controller's back-off"
    );
    let overload_vs_fixed = 100.0 * adaptive_overload.report.makespan.as_micros() as f64
        / fixed_overload.report.makespan.as_micros().max(1) as f64;
    assert!(
        overload_vs_fixed <= 100.5,
        "E13c: self-steering must hold or improve the makespan on the starved uplink \
         ({} vs {}, {overload_vs_fixed:.1}%)",
        adaptive_overload.report.makespan,
        fixed_overload.report.makespan
    );

    // Machine-readable artifact for the CI workflow: the adaptive run's
    // steering decisions next to the fixed-depth reference.
    if std::fs::create_dir_all("bench-results").is_ok() {
        let starved_uplink = serde_json::json!({
            "fixed_makespan_ms": fixed_overload.report.makespan.as_millis_f64(),
            "adaptive_makespan_ms": adaptive_overload.report.makespan.as_millis_f64(),
            "adaptive_vs_fixed_percent": overload_vs_fixed,
            "adapt_backoffs": adaptive_overload.report.adapt_backoffs,
            "adapt_rampups": adaptive_overload.report.adapt_rampups,
            "fixed_queue_delay_ms": fixed_overload.report.queue_delay.as_millis_f64(),
            "adaptive_queue_delay_ms": adaptive_overload.report.queue_delay.as_millis_f64(),
        });
        let artifact = serde_json::json!({
            "experiment": "e13-adaptive-pipeline",
            "quick": quick,
            "window_size": WINDOW,
            "max_windows_in_flight": DEPTH,
            "fixed_makespan_ms": report.makespan.as_millis_f64(),
            "adaptive_makespan_ms": adaptive_report.makespan.as_millis_f64(),
            "adaptive_vs_fixed_percent": adaptive_vs_fixed,
            "adapt_backoffs": adaptive_report.adapt_backoffs,
            "adapt_rampups": adaptive_report.adapt_rampups,
            "queue_delay_ms": adaptive_report.queue_delay.as_millis_f64(),
            "peak_windows_in_flight": adaptive_report.peak_windows_in_flight,
            "windows": adaptive_report.windows,
            "memo_hits": adaptive_report.memo_hits,
            "starved_uplink": starved_uplink,
        });
        let _ = std::fs::write(
            "bench-results/adaptive-pipeline.json",
            serde_json::to_string_pretty(&artifact).unwrap_or_default(),
        );
    }

    let title = format!(
        "E13a: pipelined (window {WINDOW}, depth {DEPTH}) vs back-to-back vs sequential on a \
         duplicate-heavy Zipf(1.2) stream ({stream_len} queries, {pool_size}-query pool, cache off)"
    );
    let mut t = Table::new(
        &title,
        &[
            "config",
            "makespan_ms",
            "score_invocations",
            "memo_hits",
            "rpc_messages",
            "dht_shard_fetches",
            "queue_delay_ms",
        ],
    );
    t.row(&[
        "sequential".into(),
        f2(seq_makespan.as_millis_f64()),
        seq_invocations.to_string(),
        "0".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "back-to-back".into(),
        f2(b2b_makespan.as_millis_f64()),
        b2b_invocations.to_string(),
        "0".into(),
        b2b_messages.to_string(),
        b2b_fetches.to_string(),
        "0.00".into(),
    ]);
    t.row(&[
        "pipelined".into(),
        f2(report.makespan.as_millis_f64()),
        pipe_invocations.to_string(),
        report.memo_hits.to_string(),
        pipe_messages.to_string(),
        pipe_fetches.to_string(),
        f2(report.queue_delay.as_millis_f64()),
    ]);
    t.row(&[
        "adaptive".into(),
        f2(adaptive_report.makespan.as_millis_f64()),
        adaptive_invocations.to_string(),
        adaptive_report.memo_hits.to_string(),
        adaptive_messages.to_string(),
        adaptive_fetches.to_string(),
        f2(adaptive_report.queue_delay.as_millis_f64()),
    ]);
    t.row(&[
        "adaptive vs fixed (% of makespan)".into(),
        f2(adaptive_vs_fixed),
        format!(
            "{} backoffs, {} rampups",
            adaptive_report.adapt_backoffs, adaptive_report.adapt_rampups
        ),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "reduction (vs back-to-back)".into(),
        format!(
            "-{:.1}%",
            100.0
                * (1.0
                    - report.makespan.as_micros() as f64 / b2b_makespan.as_micros().max(1) as f64)
        ),
        format!(
            "-{:.1}%",
            100.0 * (1.0 - pipe_invocations as f64 / b2b_invocations.max(1) as f64)
        ),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // ----- Part B: batch-aware gossip fan-out ---------------------------------------

    const FLEET: usize = 6;
    const MAX_ROUNDS: u64 = 6;
    let page_body = |term: &str| format!("{term} common shared body words for the page");
    let run = |batch_advertise: bool| -> (u64, u64, u64) {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 32;
        config.num_bees = 4;
        config.seed = 0xE13B;
        config.cache = qb_queenbee::CacheConfig::enabled();
        config.gossip = qb_queenbee::GossipConfig::enabled(FLEET);
        config.gossip.hot_set_size = 4;
        config.gossip.max_fills_per_exchange = 8;
        // Regular rounds only: anti-entropy would eventually move the cold
        // shards in both runs and blur the round accounting.
        config.gossip.anti_entropy_interval = SimDuration::from_secs(3_600);
        config.gossip.batch_advertise = batch_advertise;
        let mut qb = qb_bench::build_engine_with(config);
        for (i, hot) in ["hotalpha", "hotbeta", "hotgamma", "hotdelta"]
            .iter()
            .enumerate()
        {
            qb.publish(
                (FLEET + 1 + i) as u64,
                AccountId(1_000 + i as u64),
                &qb_dweb::WebPage::new(format!("hot/{i}"), "hot", page_body(hot), vec![]),
            )
            .expect("publish hot page");
        }
        for (i, fresh) in ["freshone", "freshtwo", "freshthree", "freshfour"]
            .iter()
            .enumerate()
        {
            qb.publish(
                (FLEET + 1 + i) as u64,
                AccountId(1_100 + i as u64),
                &qb_dweb::WebPage::new(format!("fresh/{i}"), "fresh", page_body(fresh), vec![]),
            )
            .expect("publish fresh page");
        }
        qb.seal();
        qb.process_publish_events().expect("index");

        // Saturate frontend 0's digest hot set with genuinely popular
        // terms: each probe is a distinct query (so the result cache never
        // short-circuits the shard-tier lookup that feeds popularity).
        for hot in ["hotalpha", "hotbeta", "hotgamma", "hotdelta"] {
            for j in 0..10 {
                let _ = qb.search_from(0, &format!("{hot} zz{j}"));
            }
        }

        // One batch window of cold queries, served entirely by frontend 0.
        let window: Vec<SearchRequest> = ["freshone", "freshtwo", "freshthree", "freshfour"]
            .iter()
            .map(|q| SearchRequest::new(*q).route(RoutingPolicy::Direct(0)))
            .collect();
        let responses = qb.search_batch(window).expect("batch window");
        let mut fetched_terms: Vec<String> = Vec::new();
        for r in &responses {
            for (term, prov) in r.terms.iter().zip(&r.provenance) {
                if matches!(prov, TermProvenance::DhtFetch) {
                    fetched_terms.push(term.clone());
                }
            }
        }
        assert!(
            !fetched_terms.is_empty(),
            "E13b: the cold window must fetch through the DHT"
        );

        // Count regular gossip rounds until some non-serving frontend
        // holds one of the window's freshly fetched shards.
        let mut rounds_to_warm = MAX_ROUNDS;
        for round in 1..=MAX_ROUNDS {
            qb.run_gossip_round(false);
            let fleet = qb.fleet().expect("fleet");
            let warmed = (1..FLEET).any(|i| {
                fetched_terms
                    .iter()
                    .any(|t| fleet.frontend(i).cache().cached_shard_version(t).is_some())
            });
            if warmed {
                rounds_to_warm = round;
                break;
            }
        }
        let stats = qb.gossip_stats().expect("fleet");
        (rounds_to_warm, stats.batch_adverts, stats.total_bytes())
    };

    let (rounds_off, adverts_off, bytes_off) = run(false);
    let (rounds_on, adverts_on, bytes_on) = run(true);
    let lead = rounds_off.saturating_sub(rounds_on);
    assert!(
        lead >= 1,
        "E13b: batch-aware gossip must warm a non-serving frontend >=1 round earlier \
         ({rounds_on} vs {rounds_off} rounds)"
    );
    assert_eq!(adverts_off, 0, "PR 4 baseline queues no adverts");
    assert!(adverts_on > 0);

    let title = format!(
        "E13b: batch-aware gossip fan-out — rounds until a non-serving frontend holds a shard \
         the batch window fetched ({FLEET} frontends, hot set saturated, {MAX_ROUNDS} = not \
         within the horizon)"
    );
    let mut t2 = Table::new(
        &title,
        &["config", "rounds_to_warm", "batch_adverts", "gossip_bytes"],
    );
    t2.row(&[
        "batch-aware off (PR 4)".into(),
        rounds_off.to_string(),
        adverts_off.to_string(),
        bytes_off.to_string(),
    ]);
    t2.row(&[
        "batch-aware on".into(),
        rounds_on.to_string(),
        adverts_on.to_string(),
        bytes_on.to_string(),
    ]);
    t2.row(&[
        "warm-round lead".into(),
        lead.to_string(),
        "-".into(),
        "-".into(),
    ]);

    let title = format!(
        "E13c: self-steering pipeline on a starved uplink — every query through one origin \
         peer with a 1-deep link budget ({stream_len} queries, window {WINDOW}, depth {DEPTH})"
    );
    let mut t3 = Table::new(
        &title,
        &[
            "config",
            "makespan_ms",
            "adapt_backoffs",
            "adapt_rampups",
            "queue_delay_ms",
            "peak_windows_in_flight",
        ],
    );
    t3.row(&[
        "fixed".into(),
        f2(fixed_overload.report.makespan.as_millis_f64()),
        "-".into(),
        "-".into(),
        f2(fixed_overload.report.queue_delay.as_millis_f64()),
        fixed_overload.report.peak_windows_in_flight.to_string(),
    ]);
    t3.row(&[
        "adaptive".into(),
        f2(adaptive_overload.report.makespan.as_millis_f64()),
        adaptive_overload.report.adapt_backoffs.to_string(),
        adaptive_overload.report.adapt_rampups.to_string(),
        f2(adaptive_overload.report.queue_delay.as_millis_f64()),
        adaptive_overload.report.peak_windows_in_flight.to_string(),
    ]);
    t3.row(&[
        "adaptive vs fixed (% of makespan)".into(),
        f2(overload_vs_fixed),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    vec![t, t2, t3]
}

/// E14 — the open-loop saturation ladder: qb-load arrival traces replayed
/// against a 4-frontend fleet with admission control. Part A steps the
/// offered rate from well below to 4x nominal saturation (fresh engine per
/// level, every level run twice and asserted bit-identical); part B throws
/// a flash crowd at the fleet and shows bounded queues, shedding and
/// `Fresh` → `CacheOk` degradation riding out the burst.
fn e14_open_loop(quick: bool) -> Vec<Table> {
    use qb_load::{replay, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
    use qb_queenbee::{AdmissionConfig, CacheConfig, GossipConfig, LoadReport};

    const FLEET: usize = 4;
    const QUEUE_CAPACITY: usize = 32;
    // Nominal saturation of this fleet under WAN latencies with a
    // fresh-heavy mix (measured ~140-150 q/s of goodput); the ladder's "1x".
    const SAT_QPS: f64 = 160.0;
    let (num_pages, secs) = if quick { (20u64, 2u64) } else { (40, 6) };
    let corpus = build_corpus(0xE14, num_pages as usize);

    let build = || {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 32;
        config.num_bees = 4;
        config.seed = 0xE14;
        // WAN latencies, not the test LAN: a Fresh query costs ~100ms of
        // simulated round-trips, so saturation sits at a few hundred q/s
        // and the admission thresholds below are set against that.
        config.net = qb_simnet::NetConfig::default();
        config.cache = CacheConfig::enabled();
        config.gossip = GossipConfig::enabled(FLEET);
        config.admission = AdmissionConfig::enabled();
        config.admission.queue_capacity = QUEUE_CAPACITY;
        config.admission.window_size = 8;
        config.admission.max_windows_in_flight = 2;
        config.admission.degrade_threshold = SimDuration::from_millis(250);
        config.admission.shed_threshold = SimDuration::from_millis(800);
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        qb
    };
    let replay_cfg = ReplayConfig {
        seed: 0xE14F,
        fresh_fraction: 0.9,
        top_k: 5,
        ..ReplayConfig::default()
    };
    let run_trace = |trace: &ArrivalTrace| -> LoadReport {
        let mut qb = build();
        let report = replay(&mut qb, trace, &replay_cfg).expect("open-loop replay");
        assert_eq!(report.offered, trace.len() as u64);
        assert!(
            report.peak_queue_depth <= QUEUE_CAPACITY,
            "E14: ingress queue depth {} exceeds its bound {QUEUE_CAPACITY}",
            report.peak_queue_depth
        );
        report
    };

    // ----- Part A: constant-rate ladder ---------------------------------------------

    let levels: [(&str, f64); 5] = [
        ("0.25x", 0.25),
        ("0.5x", 0.5),
        ("1x", 1.0),
        ("2x", 2.0),
        ("4x", 4.0),
    ];
    let mut reports: Vec<(&str, LoadReport)> = Vec::new();
    for (label, mult) in levels {
        let trace = ArrivalTrace::generate(
            &corpus,
            &TraceConfig {
                seed: 0xE14,
                duration: SimDuration::from_secs(secs),
                base_qps: SAT_QPS * mult,
                shape: RateShape::Constant,
                pool_size: 48,
                ..TraceConfig::default()
            },
        );
        let report = run_trace(&trace);
        let rerun = run_trace(&trace);
        assert_eq!(
            report, rerun,
            "E14: two replays of the {label} trace must be bit-identical"
        );
        reports.push((label, report));
    }

    // Acceptance criteria, asserted so the CI smoke job catches regressions.
    let sub = &reports[0].1;
    assert_eq!(sub.shed, 0, "E14: no shedding below saturation");
    assert_eq!(
        sub.completed, sub.offered,
        "E14: 0.25x completes everything"
    );
    assert!(
        sub.p99() < SimDuration::from_millis(500),
        "E14: sub-saturation p99 {} must stay bounded",
        sub.p99()
    );
    let peak_goodput = reports
        .iter()
        .map(|(_, r)| r.goodput_qps())
        .fold(0.0, f64::max);
    let over = &reports.last().expect("ladder").1;
    assert!(
        over.goodput_qps() >= 0.7 * peak_goodput,
        "E14: goodput at 4x ({:.1} q/s) must hold >=70% of peak ({peak_goodput:.1} q/s)",
        over.goodput_qps()
    );
    assert!(over.shed > 0, "E14: 4x overload must shed");
    assert!(
        over.shed_rate() < 0.95,
        "E14: shedding must stay partial even at 4x ({:.1}%)",
        100.0 * over.shed_rate()
    );

    let title = format!(
        "E14a: open-loop saturation ladder — constant-rate Poisson traces ({secs}s, 90% Fresh, \
         Zipf pool) against a {FLEET}-frontend fleet with admission control (1x = {SAT_QPS} q/s)"
    );
    let mut t = Table::new(
        &title,
        &[
            "load",
            "offered_qps",
            "goodput_qps",
            "shed_rate_%",
            "degraded",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "peak_queue",
        ],
    );
    for (label, r) in &reports {
        t.row(&[
            (*label).into(),
            f2(r.offered as f64 / secs as f64),
            f2(r.goodput_qps()),
            f2(100.0 * r.shed_rate()),
            r.degraded.to_string(),
            f2(r.p50().as_millis_f64()),
            f2(r.p99().as_millis_f64()),
            f2(r.p999().as_millis_f64()),
            r.peak_queue_depth.to_string(),
        ]);
    }

    // ----- Part B: flash crowd ------------------------------------------------------

    let burst_at = SimDuration::from_secs(secs / 2);
    let burst_len = SimDuration::from_secs((secs / 2).max(1));
    let flash = ArrivalTrace::generate(
        &corpus,
        &TraceConfig {
            seed: 0xE14B,
            duration: SimDuration::from_secs(secs),
            base_qps: 0.5 * SAT_QPS,
            shape: RateShape::FlashCrowd {
                at: burst_at,
                duration: burst_len,
                multiplier: 12.0,
            },
            pool_size: 48,
            ..TraceConfig::default()
        },
    );
    let fr = run_trace(&flash);
    assert!(fr.shed > 0, "E14b: the flash crowd must trigger shedding");
    assert!(
        fr.degraded > 0,
        "E14b: burst pressure must degrade Fresh queries to CacheOk"
    );
    assert!(
        fr.completed as f64 >= 0.25 * fr.offered as f64,
        "E14b: goodput must survive the burst ({} of {})",
        fr.completed,
        fr.offered
    );

    let title2 = format!(
        "E14b: flash crowd — 0.5x base rate with a 12x burst for {burst_len} \
         starting at {burst_at}, same fleet and admission config"
    );
    let mut t2 = Table::new(&title2, &["metric", "value"]);
    t2.row(&["offered".into(), fr.offered.to_string()]);
    t2.row(&["admitted".into(), fr.admitted.to_string()]);
    t2.row(&["degraded (Fresh->CacheOk)".into(), fr.degraded.to_string()]);
    t2.row(&["shed".into(), fr.shed.to_string()]);
    t2.row(&["shed_rate_%".into(), f2(100.0 * fr.shed_rate())]);
    t2.row(&["goodput_qps".into(), f2(fr.goodput_qps())]);
    t2.row(&["p50_ms".into(), f2(fr.p50().as_millis_f64())]);
    t2.row(&["p99_ms".into(), f2(fr.p99().as_millis_f64())]);
    t2.row(&["peak_queue".into(), fr.peak_queue_depth.to_string()]);
    t2.row(&["pipeline_windows".into(), fr.windows.to_string()]);
    vec![t, t2]
}

/// E15 — structured tracing over the E14 overload ladder: where does a
/// query's sojourn actually go? The traced replays must be byte-identical
/// to untraced ones (reports *and* every stats surface — the tracing
/// subsystem's zero-impact contract), the exported traces byte-identical
/// across identically-seeded reruns, and the critical-path attribution
/// must show the regime change the admission-control story predicts: at
/// 4x overload the p99 tail is queueing-dominated (>=50% queue wait),
/// while below saturation latency goes to shard fetching.
fn e15_tracing(quick: bool) -> Vec<Table> {
    use qb_load::{replay, replay_traced, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
    use qb_queenbee::{AdmissionConfig, CacheConfig, GossipConfig};
    use qb_trace::{attribution, to_chrome_trace, Trace};
    use std::collections::BTreeMap;

    const FLEET: usize = 4;
    // Deeper ingress queues and a laxer shed threshold than E14: the point
    // here is *observing* where overload latency goes, so the controller
    // is allowed to queue well past the service time before shedding.
    const QUEUE_CAPACITY: usize = 64;
    const SAT_QPS: f64 = 160.0;
    let (num_pages, secs) = if quick { (20u64, 2u64) } else { (40, 6) };
    let corpus = build_corpus(0xE14, num_pages as usize);

    let build = || {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 32;
        config.num_bees = 4;
        config.seed = 0xE14;
        config.net = qb_simnet::NetConfig::default();
        config.cache = CacheConfig::enabled();
        config.gossip = GossipConfig::enabled(FLEET);
        config.admission = AdmissionConfig::enabled();
        config.admission.queue_capacity = QUEUE_CAPACITY;
        config.admission.window_size = 8;
        config.admission.max_windows_in_flight = 2;
        config.admission.degrade_threshold = SimDuration::from_millis(250);
        config.admission.shed_threshold = SimDuration::from_millis(2500);
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        qb
    };
    let replay_cfg = ReplayConfig {
        seed: 0xE14F,
        fresh_fraction: 0.9,
        top_k: 5,
        ..ReplayConfig::default()
    };

    // Sum each stage's critical-path self time over a set of query trees.
    let shares = |spans: &Trace, tail_only: bool| -> (f64, f64, String, u64) {
        let roots: Vec<_> = spans.named("query").collect();
        assert!(!roots.is_empty(), "E15: traced replay recorded no queries");
        let mut sojourns: Vec<SimDuration> = roots.iter().map(|s| s.duration()).collect();
        sojourns.sort();
        let cut = if tail_only {
            sojourns[(sojourns.len() - 1) * 99 / 100]
        } else {
            SimDuration::ZERO
        };
        let mut by_stage: BTreeMap<&str, SimDuration> = BTreeMap::new();
        let mut total = SimDuration::ZERO;
        let mut counted = 0u64;
        for root in roots.iter().filter(|s| s.duration() >= cut) {
            for (name, d) in attribution(spans, root.id) {
                *by_stage.entry(name).or_insert(SimDuration::ZERO) += d;
            }
            total += root.duration();
            counted += 1;
        }
        let of_total = |d: Option<&SimDuration>| {
            100.0 * d.map(|d| d.as_millis_f64()).unwrap_or(0.0) / total.as_millis_f64().max(1e-9)
        };
        // Queueing = admission wait before issue + per-link queueing inside
        // the slowest dependency (the `net_queue` split the event-driven
        // pipeline reports); service = fetch/cache work proper.
        let queue = of_total(by_stage.get("queue_wait")) + of_total(by_stage.get("net_queue"));
        let service = of_total(by_stage.get("fetch")) + of_total(by_stage.get("cache_serve"));
        let dominant = by_stage
            .iter()
            .filter(|(name, _)| **name != "query" && **name != "score")
            .max_by_key(|(_, d)| **d)
            .map(|(name, _)| name.to_string())
            .unwrap_or_default();
        (queue, service, dominant, counted)
    };

    let title = format!(
        "E15a: critical-path attribution over the open-loop ladder — traced replays of the \
         E14 constant-rate traces ({secs}s, 90% Fresh) against a {FLEET}-frontend fleet \
         with deep-queue admission (capacity {QUEUE_CAPACITY}, shed at 2500ms); shares are \
         critical-path self time over the p99 sojourn tail (all = every completed query)"
    );
    let mut t = Table::new(
        &title,
        &[
            "load",
            "completed",
            "p99_ms",
            "tail_queue_share_%",
            "tail_service_share_%",
            "all_queue_share_%",
            "dominant_stage",
            "spans",
        ],
    );

    let levels: [(&str, f64); 3] = [("0.25x", 0.25), ("1x", 1.0), ("4x", 4.0)];
    let mut max_makespan_delta = 0.0f64;
    for (label, mult) in levels {
        let trace = ArrivalTrace::generate(
            &corpus,
            &TraceConfig {
                seed: 0xE14,
                duration: SimDuration::from_secs(secs),
                base_qps: SAT_QPS * mult,
                shape: RateShape::Constant,
                pool_size: 48,
                ..TraceConfig::default()
            },
        );
        // Zero-impact contract: the traced replay's report and every
        // stats surface must be byte-identical to the untraced run's.
        let mut plain = build();
        let report = replay(&mut plain, &trace, &replay_cfg).expect("open-loop replay");
        let mut traced = build();
        let (traced_report, spans) =
            replay_traced(&mut traced, &trace, &replay_cfg).expect("traced replay");
        assert_eq!(
            report, traced_report,
            "E15: tracing must not perturb the {label} replay"
        );
        assert_eq!(
            plain.metrics_snapshot(),
            traced.metrics_snapshot(),
            "E15: tracing must not touch any stats surface at {label}"
        );
        let delta = 100.0
            * (traced_report.makespan.as_millis_f64() - report.makespan.as_millis_f64()).abs()
            / report.makespan.as_millis_f64().max(1e-9);
        max_makespan_delta = max_makespan_delta.max(delta);

        // Determinism: a second traced replay exports the same bytes.
        let mut rerun = build();
        let (_, spans2) = replay_traced(&mut rerun, &trace, &replay_cfg).expect("traced rerun");
        let export = to_chrome_trace(&spans);
        assert_eq!(
            export,
            to_chrome_trace(&spans2),
            "E15: the {label} trace export must be byte-identical across reruns"
        );
        assert_eq!(
            spans.named("query").count() as u64,
            report.completed,
            "E15: one query tree per completed query at {label}"
        );

        let (tail_queue, tail_service, _, _) = shares(&spans, true);
        let (all_queue, _, dominant, _) = shares(&spans, false);
        match label {
            "4x" => {
                assert!(
                    tail_queue >= 50.0,
                    "E15: at 4x overload >=50% of the p99 sojourn tail must be queue wait \
                     (got {tail_queue:.1}%)"
                );
                if std::fs::create_dir_all("bench-results").is_ok() {
                    let _ = std::fs::write("bench-results/trace-e15.json", &export);
                }
            }
            "0.25x" => {
                assert!(
                    dominant == "fetch" || dominant == "cache_serve",
                    "E15: below saturation the critical path must be fetch-dominated \
                     (got '{dominant}', queue share {all_queue:.1}%)"
                );
                assert!(
                    tail_queue < 50.0,
                    "E15: below saturation even the tail must not be queue-dominated \
                     (got {tail_queue:.1}%)"
                );
            }
            _ => {}
        }
        t.row(&[
            label.into(),
            report.completed.to_string(),
            f2(report.p99().as_millis_f64()),
            f2(tail_queue),
            f2(tail_service),
            f2(all_queue),
            dominant,
            spans.len().to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "E15b: tracing integrity — the subsystem's zero-impact and determinism contracts, \
         asserted above and recorded here for the bench gate (the makespan delta has a \
         zero baseline, so any simulated-time overhead fails CI exactly)",
        &["metric", "value"],
    );
    t2.row(&["tracing_makespan_delta_%".into(), f2(max_makespan_delta)]);
    t2.row(&["ladder_levels_traced".into(), levels.len().to_string()]);
    vec![t, t2]
}

/// E8 — systems costs: DHT scaling, index, rank and chain micro-metrics.
fn e8_systems_costs() -> Vec<Table> {
    use qb_dht::{DhtConfig, DhtNetwork};
    use qb_simnet::{NetConfig, SimNet};

    let mut t = Table::new(
        "E8a: DHT lookup cost vs network size (Kademlia, k=20, alpha=3)",
        &[
            "peers",
            "mean_hops",
            "mean_messages",
            "mean_latency_ms",
            "success_%",
        ],
    );
    for &n in &[32usize, 64, 128, 256] {
        let mut net = SimNet::new(n, NetConfig::default(), 0xE8);
        let mut dht = DhtNetwork::build(&mut net, DhtConfig::default());
        net.reset_stats();
        let mut hops = 0usize;
        let mut messages = 0u64;
        let mut lat = LatencyHistogram::new();
        let mut ok = 0usize;
        let trials = 40;
        for i in 0..trials {
            let key = qb_common::DhtKey::from_bytes(format!("probe{i}").as_bytes());
            dht.put_record(&mut net, (i % n) as u64, key, vec![1, 2, 3], 1)
                .expect("put");
            if let Ok(got) = dht.get_record(&mut net, ((i * 13 + 7) % n) as u64, key) {
                hops += got.hops;
                messages += got.messages;
                lat.record(got.latency);
                ok += 1;
            }
        }
        t.row(&[
            n.to_string(),
            f2(hops as f64 / ok.max(1) as f64),
            f2(messages as f64 / ok.max(1) as f64),
            f2(lat.mean().as_millis_f64()),
            f2(100.0 * ok as f64 / trials as f64),
        ]);
    }

    // Index and rank micro-metrics.
    let mut t2 = Table::new(
        "E8b: indexing, ranking and chain micro-metrics",
        &["metric", "value"],
    );
    let corpus = build_corpus(0xE8B, 60);
    let analyzer = qb_index::Analyzer::new();
    let mut index = qb_index::InvertedIndex::new();
    let start = std::time::Instant::now();
    for (i, p) in corpus.pages.iter().enumerate() {
        index.index_text(&analyzer, &p.name, 1, corpus.creators[i], &p.text());
    }
    t2.row(&[
        "local indexing throughput (docs/s)".into(),
        f2(corpus.pages.len() as f64 / start.elapsed().as_secs_f64()),
    ]);
    t2.row(&["distinct terms".into(), index.term_count().to_string()]);
    t2.row(&[
        "index encoded size (KiB)".into(),
        f2(index.encoded_bytes() as f64 / 1024.0),
    ]);
    let mut graph = qb_rank::LinkGraph::new();
    for p in &corpus.pages {
        graph.set_links(&p.name, &p.out_links);
    }
    let start = std::time::Instant::now();
    let ranks = qb_rank::pagerank(&graph, &qb_rank::PageRankConfig::default());
    t2.row(&[
        "pagerank time (ms, 60 pages)".into(),
        f2(start.elapsed().as_secs_f64() * 1e3),
    ]);
    t2.row(&["pagerank mass".into(), f4(ranks.iter().sum::<f64>())]);
    let mut chain = qb_chain::Blockchain::new(qb_chain::ChainConfig::default());
    let start = std::time::Instant::now();
    for i in 0..2_000u64 {
        chain.submit_call(
            AccountId(100 + (i % 50)),
            qb_chain::Call::PublishPage {
                name: format!("p{i}"),
                cid: qb_common::Cid::for_data(&i.to_be_bytes()),
                out_links: vec![],
            },
        );
        if i % 500 == 499 {
            chain.seal_block(SimInstant::ZERO);
        }
    }
    chain.seal_block(SimInstant::ZERO);
    t2.row(&[
        "chain throughput (tx/s, publish calls)".into(),
        f2(2_000.0 / start.elapsed().as_secs_f64()),
    ]);
    t2.row(&[
        "chain integrity verified".into(),
        chain.verify_integrity().is_ok().to_string(),
    ]);
    vec![t, t2]
}

/// E16 — content-addressed index artifacts (qb-segment). Part A compares
/// two identical fleets warming a brand-new frontend: one joins through
/// the ordinary gossip bootstrap (one elevated-budget exchange, then
/// catch-up rounds), the other bulk-bootstraps from the writer's published
/// segment artifact (probe a neighbour for the pointer, fetch the artifact
/// through storage + DHT, import through the version guard, one delta
/// catch-up exchange). Between artifact publish and join a handful of
/// pages are republished, so the artifact is slightly stale and the
/// version guards must cover the gap. Part B measures writer compaction:
/// batched publishes folding pending shards into generational artifacts,
/// and the resulting write amplification.
///
/// Asserted acceptance criteria (the CI smoke job runs this quick):
/// * the segment joiner reaches >=95% of steady-state hit rate, in no
///   more catch-up rounds than the gossip joiner,
/// * with >=50% fewer DHT shard fetches across the warm-up probes,
/// * and strictly fewer bootstrap bytes than the gossip-only warm-up,
/// * zero stale results served after the (stale) artifact import,
/// * every segment publish/fetch byte visibly charged to `NetStats`.
fn e16_segment(quick: bool) -> Vec<Table> {
    use qb_queenbee::{CacheConfig, GossipConfig, SegmentConfig};
    use qb_workload::ZipfSampler;

    const PROBE_K: usize = 30;
    const MAX_JOIN_ROUNDS: usize = 8;
    let fleet_n: usize = if quick { 12 } else { 24 };
    let (num_pages, pool_size, warm_len) = if quick { (40, 80, 360) } else { (80, 160, 720) };

    let corpus = build_corpus(0xE16, num_pages);
    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(0xE16);
    let pool = workload.generate_batch(&corpus, &mut rng, pool_size);
    // A broad, near-uniform query mix: bulk bootstrap is about carrying a
    // joiner to *coverage*, not just the Zipf head a few hot-set fills
    // could ship.
    let zipf = ZipfSampler::new(pool.len(), 0.3);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(0xE16F);
        (0..warm_len).map(|_| zipf.sample(&mut rng)).collect()
    };
    // Per-round probe slices: every catch-up round probes the joiner with
    // queries it has never served, so a probe's own fetches cannot warm
    // the very rate a later round measures.
    let probes: Vec<usize> = {
        let mut rng = DetRng::new(0xE16B);
        (0..PROBE_K * (MAX_JOIN_ROUNDS + 1))
            .map(|_| zipf.sample(&mut rng))
            .collect()
    };

    struct JoinRun {
        steady_hit_rate: f64,
        joined_hit_rate_r0: f64,
        rounds_to_95: u64,
        probe_shard_fetches: u64,
        bootstrap_bytes: u64,
        bootstrap_fill_bytes: u64,
        stale: u64,
        segment: qb_queenbee::SegmentStats,
        report: Option<qb_queenbee::SegmentBootstrapReport>,
        publish_charged: bool,
        fetch_charged: bool,
    }

    let run = |use_segment: bool| -> JoinRun {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = if quick { 64 } else { 96 };
        config.num_bees = 6;
        config.seed = 0xE16;
        config.cache = CacheConfig::enabled();
        // A shard tier sized to hold the whole (small) index: the point of
        // bulk bootstrap is reaching coverage, so the cache must not be
        // the binding constraint.
        config.cache.shard_capacity_bytes = 512 * 1024;
        // Production-sized chunks: the test-default tiny chunker (64-byte
        // target) would shred a ~100 KB artifact into ~1500 chunks and
        // charge per-chunk RPC overhead that dwarfs the payload.
        config.storage.chunker = qb_storage::ChunkerConfig::default();
        config.gossip = GossipConfig::enabled(fleet_n);
        // Budgets sized like a real deployment, where the index dwarfs
        // what any single exchange can ship: a joiner cannot warm from
        // one elevated-budget bootstrap exchange alone.
        config.gossip.hot_set_size = 24;
        config.gossip.max_fills_per_exchange = 4;
        // Segments on in BOTH runs (identical publish-side costs); the
        // runs differ only in how the late joiner bootstraps. Thresholds
        // out of reach: the artifact is published by one explicit
        // compaction below, bracketed by NetStats readings.
        config.segment = SegmentConfig::enabled();
        config.segment.max_pending_terms = usize::MAX;
        config.segment.max_pending_bytes = usize::MAX;
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);

        let net_before = qb.net.stats().clone();
        qb.compact_segments()
            .expect("compaction")
            .expect("a publish batch leaves pending shards");
        let publish_delta = qb.net.stats().delta_since(&net_before);
        let seg_after_publish = qb.segment_stats();
        let publish_charged = seg_after_publish.publish_bytes > 0
            && publish_delta.bytes >= seg_after_publish.publish_bytes;

        // Republishes after the artifact: its shards for these pages are
        // now one version behind, so the joiner's import is slightly
        // stale and the read-time version checks must cover the gap.
        let mut rrng = DetRng::new(0xE16C);
        for v in 0..1usize {
            let victim = (v * 7) % corpus.pages.len();
            let page = &corpus.pages[victim];
            let updated = mutate_page(page, 100 + v as u64, &mut rrng);
            let creator = AccountId(corpus.creators[victim]);
            qb.publish((fleet_n + 2 + victim % 8) as u64, creator, &updated)
                .expect("republish");
        }
        qb.seal();
        qb.process_publish_events().expect("reindex");

        // Warm the fleet to steady state; the second half of the stream
        // is the steady-state hit-rate window.
        let mut steady_hits = 0u64;
        let mut steady_served = 0u64;
        for (i, &q) in stream.iter().enumerate() {
            qb.advance_time(SimDuration::from_millis(50));
            let frontend = i % fleet_n;
            if let Ok(out) = qb.search_from(frontend, &pool[q]) {
                if i >= stream.len() / 2 {
                    steady_served += 1;
                    if out.shards_fetched == 0 {
                        steady_hits += 1;
                    }
                }
            }
        }
        let steady_hit_rate = steady_hits as f64 / steady_served.max(1) as f64;

        // The joiner: same fleet state, two bootstrap paths.
        let net_join = qb.net.stats().clone();
        let gossip_join = qb.gossip_stats().expect("fleet");
        let (joined, report) = if use_segment {
            let (idx, rep) = qb.fleet_join_with_segment().expect("segment join");
            (idx, Some(rep))
        } else {
            (qb.fleet_join().expect("gossip join"), None)
        };
        let fetch_charged = match &report {
            Some(r) if r.used_segment => {
                r.fetch_bytes > 0 && qb.net.stats().delta_since(&net_join).bytes >= r.fetch_bytes
            }
            _ => true,
        };

        // Catch-up rounds until the joiner reaches 95% of steady state.
        let target = 0.95 * steady_hit_rate;
        let mut rounds_to_95 = (MAX_JOIN_ROUNDS + 1) as u64; // sentinel: never
        let mut probe_shard_fetches = 0u64;
        let mut joined_hit_rate_r0 = 0.0;
        for r in 0..=MAX_JOIN_ROUNDS {
            if r > 0 {
                qb.advance_time(qb.config().gossip.round_interval);
            }
            let slice = &probes[r * PROBE_K..(r + 1) * PROBE_K];
            let mut hits = 0u64;
            for &q in slice {
                let out = qb.search_from(joined, &pool[q]).expect("probe");
                probe_shard_fetches += out.shards_fetched as u64;
                if out.shards_fetched == 0 {
                    hits += 1;
                }
            }
            let rate = hits as f64 / PROBE_K as f64;
            if r == 0 {
                joined_hit_rate_r0 = rate;
            }
            if rate >= target {
                rounds_to_95 = r as u64;
                break;
            }
        }
        let bootstrap_bytes = qb.net.stats().delta_since(&net_join).bytes;
        let gossip_after = qb.gossip_stats().expect("fleet");

        JoinRun {
            steady_hit_rate,
            joined_hit_rate_r0,
            rounds_to_95,
            probe_shard_fetches,
            bootstrap_bytes,
            bootstrap_fill_bytes: gossip_after.bootstrap_fill_bytes
                - gossip_join.bootstrap_fill_bytes,
            stale: qb.freshness.stale_results,
            segment: qb.segment_stats(),
            report,
            publish_charged,
            fetch_charged,
        }
    };

    let gossip_only = run(false);
    let segment = run(true);
    let seg_report = segment.report.expect("segment run reports its bootstrap");

    // Acceptance criteria, asserted so the CI smoke job catches regressions.
    assert!(
        seg_report.used_segment,
        "E16: the segment joiner must find and use the advertised artifact"
    );
    assert_eq!(gossip_only.stale, 0, "E16: gossip run served stale results");
    assert_eq!(
        segment.stale, 0,
        "E16: stale results served after the artifact import"
    );
    assert!(
        segment.rounds_to_95 <= MAX_JOIN_ROUNDS as u64,
        "E16: segment bootstrap must reach 95% of steady-state hit rate \
         (steady {:.2}, round-0 rate {:.2})",
        segment.steady_hit_rate,
        segment.joined_hit_rate_r0
    );
    assert!(
        segment.rounds_to_95 <= gossip_only.rounds_to_95,
        "E16: segment bootstrap must not need more catch-up rounds than \
         gossip ({} vs {})",
        segment.rounds_to_95,
        gossip_only.rounds_to_95
    );
    assert!(
        2 * segment.probe_shard_fetches <= gossip_only.probe_shard_fetches,
        "E16: segment bootstrap must halve the warm-up DHT shard fetches \
         ({} vs {})",
        segment.probe_shard_fetches,
        gossip_only.probe_shard_fetches
    );
    assert!(
        segment.bootstrap_bytes < gossip_only.bootstrap_bytes,
        "E16: segment bootstrap must move fewer bytes than the gossip-only \
         warm-up ({} vs {})",
        segment.bootstrap_bytes,
        gossip_only.bootstrap_bytes
    );
    for r in [&gossip_only, &segment] {
        assert!(
            r.publish_charged,
            "E16: segment publish bytes must be charged to NetStats"
        );
        assert!(
            r.fetch_charged,
            "E16: segment fetch bytes must be charged to NetStats"
        );
    }

    let title = format!(
        "E16a: bootstrapping frontend {fleet_n} of a {fleet_n}-frontend fleet \
         ({num_pages} pages, {} warm-up queries) — gossip-only vs segment artifact",
        stream.len()
    );
    let mut t = Table::new(
        &title,
        &[
            "config",
            "steady_hit_rate",
            "joined_hit_rate_r0",
            "rounds_to_95",
            "probe_dht_fetches",
            "bootstrap_bytes",
            "bootstrap_fill_bytes",
            "artifact_fetch_bytes",
            "stale_results",
        ],
    );
    for (label, r) in [
        ("gossip-only join", &gossip_only),
        ("segment join", &segment),
    ] {
        t.row(&[
            label.into(),
            f2(r.steady_hit_rate),
            f2(r.joined_hit_rate_r0),
            r.rounds_to_95.to_string(),
            r.probe_shard_fetches.to_string(),
            r.bootstrap_bytes.to_string(),
            r.bootstrap_fill_bytes.to_string(),
            r.segment.fetch_bytes.to_string(),
            r.stale.to_string(),
        ]);
    }
    t.row(&[
        "reduction".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!(
            "{:.1}x",
            gossip_only.probe_shard_fetches as f64 / segment.probe_shard_fetches.max(1) as f64
        ),
        format!(
            "{:.1}x",
            gossip_only.bootstrap_bytes as f64 / segment.bootstrap_bytes.max(1) as f64
        ),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // Part B: writer compaction. Small per-batch threshold, batched
    // publishes: every batch folds its pending shards into the previous
    // artifact and republishes the merged segment — the classic
    // write-amplification trade of immutable index artifacts.
    let batch_pages = if quick { 8 } else { 10 };
    let mut config = qb_queenbee::QueenBeeConfig::small();
    config.num_peers = if quick { 48 } else { 64 };
    config.num_bees = 6;
    config.seed = 0xE16;
    config.cache = CacheConfig::enabled();
    config.segment = SegmentConfig::enabled();
    config.segment.max_pending_terms = 1; // compact on every publish batch
    let mut qb = qb_bench::build_engine_with(config);
    for (b, chunk) in corpus.pages.chunks(batch_pages).enumerate() {
        for (i, page) in chunk.iter().enumerate() {
            let idx = b * batch_pages + i;
            let creator = AccountId(corpus.creators[idx]);
            qb.publish((idx % 40) as u64, creator, page)
                .expect("publish");
        }
        qb.seal();
        qb.process_publish_events().expect("index batch");
    }
    let seg = qb.segment_stats();
    let artifact = qb.latest_segment().expect("compacted artifact");
    assert!(
        seg.compactions >= 2,
        "E16b: batched publishes must compact repeatedly ({} compactions)",
        seg.compactions
    );
    assert!(
        seg.publish_bytes >= artifact.total_len,
        "E16b: cumulative publish bytes can never undercut the final artifact"
    );

    let mut t2 = Table::new(
        &format!(
            "E16b: writer compaction over {} batches of {batch_pages} pages \
             (compact on every batch)",
            corpus.pages.len().div_ceil(batch_pages)
        ),
        &["metric", "value"],
    );
    for (name, value) in [
        ("compactions", seg.compactions),
        ("input terms folded", seg.compaction_input_terms),
        ("artifacts published", seg.segments_published),
        ("cumulative publish bytes", seg.publish_bytes),
        ("final artifact bytes", artifact.total_len),
        ("final artifact terms", artifact.term_count),
        ("final artifact generation", artifact.generation),
        ("final artifact chunks", artifact.chunk_count),
    ] {
        t2.row(&[name.to_string(), value.to_string()]);
    }
    t2.row(&[
        "write amplification (publish / final bytes)".into(),
        f2(seg.publish_bytes as f64 / artifact.total_len.max(1) as f64),
    ]);
    vec![t, t2]
}

/// E17 — replica-aware routing + hedged fetches: kill the post-crash load
/// spike and the slow-replica tail.
///
/// **Part A** replays the same open-loop trace on a zoned fleet (slow
/// cross-zone links) twice — the seed's ring-successor routing vs
/// rendezvous hashing + power-of-two-choices — crashing one frontend
/// between a warm-up window and the measurement window. The per-frontend
/// admitted counts over the crash window show where the orphaned keyspace
/// lands: the ring walk piles all of it on one successor, rendezvous
/// spreads it across the survivors.
///
/// **Part B** drives the DHT read path on a lossy LAN with hedging off vs
/// on, identical seeds: a dropped primary normally surfaces as an RPC
/// timeout, but the hedged run arms a timer at the origin's adaptive RTT
/// p95 and races a second replica, so its fetch p99 must land strictly
/// below the unhedged run's — while staying inside the hedge-rate valve
/// and a wasted-bytes budget, charging every hedge byte to `NetStats`,
/// and returning byte-identical records.
///
/// Asserted acceptance criteria (the CI smoke job runs this quick):
/// * post-crash per-frontend load spike under rendezvous + two-choices
///   ≤ 0.6× the ring-walk successor's (both measured as the hottest
///   survivor's excess over the pre-crash fair share of the full
///   fleet — even a perfect respread puts 8 slots' traffic on 7
///   survivors, so raw maxima bottom out at 8/7),
/// * hedged fetch p99 strictly below unhedged on the same lossy net,
/// * hedges ≤ the configured percent of fetches (the safety valve) and
///   wasted hedge bytes ≤ 5% of the run's total traffic,
/// * records byte-identical with hedging on vs off, and closed-loop hits
///   byte-identical at the engine level.
fn e17_hedging(quick: bool) -> Vec<Table> {
    use qb_dht::{DhtConfig, DhtNetwork};
    use qb_load::{replay, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
    use qb_queenbee::{AdmissionConfig, CacheConfig, GossipConfig};
    use qb_simnet::{NetConfig, SimNet};

    // ----- Part A: post-crash routing spike -----------------------------------------

    const ZONES: usize = 4;
    const VICTIM: usize = 2;
    let fleet_n: usize = 8;
    let (num_pages, warm_secs, crash_secs, qps) = if quick {
        (20usize, 1u64, 2u64, 150.0)
    } else {
        (40, 2, 6, 150.0)
    };
    let corpus = build_corpus(0xE17, num_pages);
    let make_trace = |seed: u64, secs: u64| {
        ArrivalTrace::generate(
            &corpus,
            &TraceConfig {
                seed,
                duration: SimDuration::from_secs(secs),
                base_qps: qps,
                shape: RateShape::Constant,
                pool_size: 48,
                ..TraceConfig::default()
            },
        )
    };
    let warm_trace = make_trace(0xE17A, warm_secs);
    let crash_trace = make_trace(0xE17C, crash_secs);

    struct CrashRun {
        admitted: Vec<u64>,
        spike: f64,
        shed: u64,
    }
    let run_policy = |ring: bool| -> CrashRun {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 64;
        config.num_bees = 6;
        config.seed = 0xE17;
        // Zoned WAN: cheap in-zone links, 40ms cross-zone links — the
        // "slow-link zone" a crashed frontend's traffic must not pile
        // into.
        config.net = NetConfig::zoned(ZONES, 2_000, 40_000);
        config.cache = CacheConfig::enabled();
        config.gossip = GossipConfig::enabled_zoned(fleet_n, ZONES);
        config.admission = AdmissionConfig::enabled();
        // Generous admission bounds: the measurement is about where
        // arrivals land, so shedding must not mask the spike.
        config.admission.queue_capacity = 128;
        config.admission.shed_threshold = SimDuration::from_secs(5);
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        let replay_cfg = ReplayConfig {
            seed: 0xE17F,
            fresh_fraction: 0.5,
            top_k: 5,
            ring_successor_routing: ring,
        };
        // Warm-up window with the full fleet, then the crash, then the
        // measurement window on the survivors.
        replay(&mut qb, &warm_trace, &replay_cfg).expect("warm-up replay");
        qb.fleet_leave(VICTIM, false).expect("crash");
        let report = replay(&mut qb, &crash_trace, &replay_cfg).expect("crash-window replay");
        // Normalize the hottest survivor by the *pre-crash* fair share:
        // 1.0 = "as if nobody crashed", 2.0 = "one slot absorbed a whole
        // second keyspace" (the ring walk's signature).
        let fair = report.admitted as f64 / fleet_n as f64;
        let max = report
            .admitted_per_frontend
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        CrashRun {
            admitted: report.admitted_per_frontend.clone(),
            spike: max as f64 / fair.max(1e-9),
            shed: report.shed,
        }
    };
    let ring = run_policy(true);
    let hrw = run_policy(false);

    assert_eq!(
        ring.admitted[VICTIM], 0,
        "E17a: the crashed frontend must not be routed to"
    );
    assert_eq!(
        hrw.admitted[VICTIM], 0,
        "E17a: the crashed frontend must not be routed to"
    );
    assert!(
        ring.spike >= 1.5,
        "E17a: the ring walk must actually spike its successor ({:.2}x fair share)",
        ring.spike
    );
    // The spike is the *excess* over the pre-crash fair share: even a
    // perfect respread serves eight slots' traffic on seven survivors
    // (max >= 8/7 of fair share), so comparing raw maxima would demand
    // the impossible once the two-choices spread approaches perfect.
    // Excess isolates the imbalance the routing policy controls.
    assert!(
        hrw.spike - 1.0 <= 0.6 * (ring.spike - 1.0),
        "E17a: rendezvous + two-choices post-crash excess load ({:.2}x over \
         fair share) must stay <= 0.6x the ring-walk spike's excess ({:.2}x)",
        hrw.spike - 1.0,
        ring.spike - 1.0
    );

    let title = format!(
        "E17a: post-crash load spike — {fleet_n}-frontend fleet over {ZONES} zones, \
         frontend {VICTIM} crashes after warm-up, {crash_secs}s crash window at {qps} q/s"
    );
    let mut t = Table::new(
        &title,
        &[
            "routing",
            "admitted_per_frontend",
            "max_admitted",
            "max_over_fair_share",
            "max_over_mean_survivor",
            "shed",
        ],
    );
    for (label, r) in [
        ("ring successor (seed)", &ring),
        ("rendezvous + 2-choices", &hrw),
    ] {
        let max = r.admitted.iter().copied().max().unwrap_or(0);
        let total: u64 = r.admitted.iter().sum();
        let survivors = (fleet_n - 1) as f64;
        t.row(&[
            label.into(),
            format!("{:?}", r.admitted),
            max.to_string(),
            f2(r.spike),
            f2(max as f64 / (total as f64 / survivors).max(1e-9)),
            r.shed.to_string(),
        ]);
    }
    t.row(&[
        "spike reduction".into(),
        "-".into(),
        "-".into(),
        format!("{:.1}x", ring.spike / hrw.spike.max(1e-9)),
        "-".into(),
        "-".into(),
    ]);

    // ----- Part B: hedged fetches on a lossy net ------------------------------------

    // A p95-armed timer naturally fires on ~5% of fetches (the benign
    // p95-exceeders), so a valve at exactly the shipped 5% default would
    // starve genuine timeout rescues behind benign fires; the run leaves
    // headroom for the drop tail while still proving the cap binds.
    const HEDGE_PERCENT: u32 = 10;
    let (nkeys, reads) = if quick {
        (24usize, 500usize)
    } else {
        (32, 1000)
    };
    struct HedgeRun {
        p50: SimDuration,
        p95: SimDuration,
        p99: SimDuration,
        records: Vec<Vec<u8>>,
        stats: qb_simnet::NetStats,
        hedge: qb_dht::HedgeStats,
    }
    let run_dht = |hedged: bool| -> HedgeRun {
        // A lossy LAN: ~1% of sends vanish, so the unhedged tail is the
        // RPC timeout while the common case is sub-millisecond — exactly
        // the gap a p95-armed hedge closes. One RPC in flight at a time
        // (`alpha = 1`): with lookup parallelism a dropped probe's
        // siblings carry the lookup anyway, so the single-flight walk is
        // the regime where the hedge timer is the *only* rescue and the
        // unhedged run pays the full timeout.
        let mut cfg = NetConfig::lan();
        cfg.drop_probability = 0.01;
        let mut net = SimNet::new(64, cfg, 0xE17B);
        let mut dcfg = DhtConfig::small();
        dcfg.alpha = 1;
        if hedged {
            dcfg.hedge = qb_dht::HedgeConfig::enabled();
            dcfg.hedge.percent = HEDGE_PERCENT;
        }
        let mut dht = DhtNetwork::build(&mut net, dcfg);
        let keys: Vec<qb_common::DhtKey> = (0..nkeys)
            .map(|i| qb_common::DhtKey::for_term(&format!("e17-shard-{i}")))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            dht.put_record(
                &mut net,
                (i % 8) as u64,
                *key,
                format!("e17-value-{i}").into_bytes(),
                1,
            )
            .expect("put");
        }
        let origin = 50u64;
        let mut latency = LatencyHistogram::new();
        let mut records = Vec::new();
        for r in 0..reads {
            let got = dht
                .get_record(&mut net, origin, keys[r % nkeys])
                .expect("get");
            latency.record(got.latency);
            records.push(got.record.value);
        }
        HedgeRun {
            p50: latency.value_at_quantile(0.50),
            p95: latency.value_at_quantile(0.95),
            p99: latency.value_at_quantile(0.99),
            records,
            stats: net.stats().clone(),
            hedge: dht.hedge_stats(origin),
        }
    };
    let unhedged = run_dht(false);
    let hedged = run_dht(true);

    assert_eq!(
        unhedged.records, hedged.records,
        "E17b: hedging must not change a single returned record"
    );
    assert!(
        hedged.p99 < unhedged.p99,
        "E17b: hedged fetch p99 ({}) must land strictly below unhedged ({})",
        hedged.p99,
        unhedged.p99
    );
    assert!(
        hedged.hedge.hedges * 100 <= hedged.hedge.fetches * HEDGE_PERCENT as u64,
        "E17b: the hedge-rate valve must hold ({} hedges over {} fetches, cap {HEDGE_PERCENT}%)",
        hedged.hedge.hedges,
        hedged.hedge.fetches
    );
    assert_eq!(
        hedged.stats.hedges_fired, hedged.hedge.hedges,
        "E17b: every fired hedge must be charged to NetStats"
    );
    assert!(
        hedged.stats.hedges_won <= hedged.stats.hedges_fired,
        "E17b: hedge wins cannot exceed fires"
    );
    assert!(
        hedged.stats.hedges_wasted_bytes * 20 <= hedged.stats.bytes,
        "E17b: wasted hedge bytes ({}) must stay <= 5% of total traffic ({})",
        hedged.stats.hedges_wasted_bytes,
        hedged.stats.bytes
    );
    assert_eq!(
        unhedged.stats.hedges_fired, 0,
        "E17b: the unhedged run must never fire a hedge"
    );

    // Engine-level identity: the same closed-loop queries answer with
    // byte-identical hits whether or not the DHT hedges its fetches.
    let run_engine = |hedged: bool| -> Vec<Vec<u64>> {
        let mut config = qb_queenbee::QueenBeeConfig::small();
        config.num_peers = 32;
        config.num_bees = 4;
        config.seed = 0xE17E;
        config.cache = CacheConfig::enabled();
        config.gossip = GossipConfig::enabled(4);
        if hedged {
            config.dht.hedge = qb_dht::HedgeConfig::enabled();
        }
        let mut qb = qb_bench::build_engine_with(config);
        publish_corpus(&mut qb, &corpus);
        let workload = QueryWorkload::new(&corpus);
        let mut rng = DetRng::new(0xE17E);
        workload
            .generate_batch(&corpus, &mut rng, 24)
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let out = qb.search(i as u64 % 4, q).expect("search");
                out.results.iter().map(|r| r.doc_id).collect()
            })
            .collect()
    };
    assert_eq!(
        run_engine(false),
        run_engine(true),
        "E17b: closed-loop hits must be byte-identical with hedging on vs off"
    );

    let mut t2 = Table::new(
        &format!(
            "E17b: hedged vs unhedged DHT fetches — {reads} reads over {nkeys} keys on a \
             lossy LAN (1% drops, single-flight lookups), hedge valve {HEDGE_PERCENT}% of fetches"
        ),
        &[
            "config",
            "p50_us",
            "p95_us",
            "p99_us",
            "hedges_fired",
            "hedges_won",
            "hedge_wasted_bytes",
            "fetches",
        ],
    );
    for (label, r) in [("unhedged", &unhedged), ("hedged", &hedged)] {
        t2.row(&[
            label.into(),
            r.p50.as_micros().to_string(),
            r.p95.as_micros().to_string(),
            r.p99.as_micros().to_string(),
            r.stats.hedges_fired.to_string(),
            r.stats.hedges_won.to_string(),
            r.stats.hedges_wasted_bytes.to_string(),
            r.hedge.fetches.to_string(),
        ]);
    }
    t2.row(&[
        "p99 reduction".into(),
        "-".into(),
        "-".into(),
        format!(
            "{:.1}x",
            unhedged.p99.as_micros() as f64 / hedged.p99.as_micros().max(1) as f64
        ),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // Machine-readable artifact for the CI workflow.
    if std::fs::create_dir_all("bench-results").is_ok() {
        let routing = serde_json::json!({
            "ring_admitted_per_frontend": ring.admitted,
            "hrw_admitted_per_frontend": hrw.admitted,
            "ring_spike_over_fair_share": ring.spike,
            "hrw_spike_over_fair_share": hrw.spike,
            "spike_reduction": ring.spike / hrw.spike.max(1e-9),
        });
        let hedging = serde_json::json!({
            "unhedged_p99_us": unhedged.p99.as_micros(),
            "hedged_p99_us": hedged.p99.as_micros(),
            "hedges_fired": hedged.stats.hedges_fired,
            "hedges_won": hedged.stats.hedges_won,
            "hedge_wasted_bytes": hedged.stats.hedges_wasted_bytes,
            "fetches": hedged.hedge.fetches,
            "valve_percent": HEDGE_PERCENT,
        });
        let artifact = serde_json::json!({
            "experiment": "e17-hedging",
            "quick": quick,
            "routing": routing,
            "hedging": hedging,
        });
        let _ = std::fs::write(
            "bench-results/hedging-e17.json",
            serde_json::to_string_pretty(&artifact).unwrap_or_default(),
        );
    }

    vec![t, t2]
}
