//! Shared harness code for the Criterion benchmarks and the `experiments`
//! binary that regenerates every table in EXPERIMENTS.md.

use qb_baseline::CrawlDoc;
use qb_chain::AccountId;
use qb_common::DetRng;
use qb_queenbee::{QueenBee, QueenBeeConfig};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator};

/// Build a deterministic corpus of `num_pages` pages.
pub fn build_corpus(seed: u64, num_pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages,
        vocab_size: (num_pages * 12).max(500),
        avg_doc_len: 80,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut DetRng::new(seed))
}

/// Build a QueenBee engine sized for experiments.
pub fn build_engine(num_peers: usize, num_bees: usize, seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = num_peers;
    config.num_bees = num_bees;
    config.seed = seed;
    QueenBee::new(config).expect("valid experiment configuration")
}

/// Build an engine from an explicit configuration (panics on invalid config).
pub fn build_engine_with(config: QueenBeeConfig) -> QueenBee {
    QueenBee::new(config).expect("valid experiment configuration")
}

/// Publish every page of a corpus into the engine and run the worker bees
/// over the resulting publish events. Returns the number of accepted pages.
pub fn publish_corpus(engine: &mut QueenBee, corpus: &Corpus) -> usize {
    let mut accepted = 0;
    for (i, page) in corpus.pages.iter().enumerate() {
        let creator = AccountId(corpus.creators[i]);
        let peer = (i % (engine.config().num_peers - engine.config().num_bees)) as u64;
        let report = engine
            .publish(peer, creator, page)
            .expect("publishing a generated page");
        if report.accepted {
            accepted += 1;
        }
    }
    engine.seal();
    engine
        .process_publish_events()
        .expect("indexing published pages");
    accepted
}

/// Snapshot the corpus as crawl documents for the baselines, with per-page
/// versions and texts overridden by `versions` (version 1 / original text
/// when absent).
pub fn crawl_docs(
    corpus: &Corpus,
    versions: &std::collections::HashMap<String, (u64, String)>,
) -> Vec<CrawlDoc> {
    corpus
        .pages
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (version, text) = versions.get(&p.name).cloned().unwrap_or((1, p.text()));
            CrawlDoc {
                name: p.name.clone(),
                version,
                creator: corpus.creators[i],
                text,
            }
        })
        .collect()
}

/// A simple fixed-width text table used for every experiment's output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Rows as JSON objects keyed by header (for machine-readable output).
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let mut obj = serde_json::Map::new();
                for (h, c) in self.headers.iter().zip(row) {
                    obj.insert(h.clone(), serde_json::Value::String(c.clone()));
                }
                serde_json::Value::Object(obj)
            })
            .collect();
        serde_json::json!({ "title": self.title, "rows": rows })
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "longheader"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longheader"));
        assert_eq!(s.lines().count(), 6);
        let json = t.to_json();
        assert_eq!(json["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn corpus_and_engine_helpers_work_together() {
        let corpus = build_corpus(1, 10);
        let mut engine = build_engine(20, 3, 1);
        let accepted = publish_corpus(&mut engine, &corpus);
        assert!(
            accepted >= 8,
            "most generated pages should be accepted, got {accepted}"
        );
        let docs = crawl_docs(&corpus, &std::collections::HashMap::new());
        assert_eq!(docs.len(), 10);
    }
}
