//! Logical simulation time.
//!
//! The whole reproduction runs against a logical clock measured in
//! microseconds. Latency models add to it; nothing reads the wall clock, so
//! experiment output is identical across machines and runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimInstant(pub u64);

/// A span of simulated time in microseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimInstant {
    /// Simulation start.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Microseconds since simulation start.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier` (saturating).
    pub fn since(&self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Build from seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Build from fractional milliseconds (rounds to the nearest microsecond).
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds as floating point (for reporting).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as floating point (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiplication by a scalar.
    pub fn mul(&self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Maximum of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimInstant::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!((t2 - t).as_micros(), 1_000_000);
        assert_eq!(t2.since(t).as_secs_f64(), 1.0);
        // Saturating subtraction: earlier.since(later) == 0.
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_millis_f64(), 3.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn max_and_mul() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.mul(3).as_micros(), 6_000);
    }
}
