//! Common primitives shared by every QueenBee crate.
//!
//! This crate is dependency-light on purpose: it provides the cryptographic
//! content hashing (an in-house SHA-256 validated against FIPS 180-4 test
//! vectors), the 256-bit identifier types used by the DHT and the content
//! addressed storage, LEB128 variable-length integer encoding used by the
//! inverted index, a deterministic random number generator so that every
//! simulation in the repository is reproducible from a seed, the logical
//! clock used by the network simulator, and the deterministic log-bucketed
//! latency histogram the load harness aggregates tail percentiles with.

pub mod error;
pub mod hash;
pub mod hex;
pub mod hist;
pub mod id;
pub mod rng;
pub mod time;
pub mod varint;

pub use error::{QbError, QbResult};
pub use hash::{sha256, Hash256};
pub use hist::LatencyHistogram;
pub use id::{Cid, DhtKey, NodeId};
pub use rng::DetRng;
pub use time::{SimDuration, SimInstant};
