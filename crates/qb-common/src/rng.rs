//! Deterministic random number generation.
//!
//! Every stochastic decision in the reproduction — latency samples, churn,
//! workload generation, attack target selection — flows through [`DetRng`],
//! a small xoshiro256**-based generator seeded explicitly. Re-running any
//! experiment with the same seed reproduces the exact same table.

/// Deterministic RNG (xoshiro256** with a SplitMix64 seeder).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> DetRng {
        // SplitMix64 to spread the seed over the full state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s.iter().all(|&x| x == 0) {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Derive an independent child generator; useful to give each simulated
    /// node / worker its own stream while staying reproducible.
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be > 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_hi_lo(x, bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform usize in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// Sample from an exponential distribution with the given mean.
    /// Used for Poisson inter-arrival times (page updates, queries).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Sample from a standard normal via Box–Muller.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose a random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_index(items.len())]
    }

    /// Sample `k` distinct indices from `0..n` (k <= n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[inline]
fn mul_hi_lo(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = DetRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut r = DetRng::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.5..5.5).contains(&mean), "mean={mean}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut r = DetRng::new(15);
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| r.gen_normal(10.0, 2.0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((9.8..10.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = DetRng::new(19);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = DetRng::new(23);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    proptest! {
        #[test]
        fn gen_range_always_below_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut r = DetRng::new(seed);
            for _ in 0..32 {
                prop_assert!(r.gen_range(bound) < bound);
            }
        }
    }
}
