//! LEB128 variable-length integer encoding.
//!
//! Posting lists in the inverted index store document-id deltas and term
//! frequencies as varints, which is where most of the index compression in
//! `qb-index` comes from.

use crate::error::{QbError, QbResult};

/// Append the LEB128 encoding of `value` to `out`. Returns the number of
/// bytes written (1..=10).
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        } else {
            out.push(byte | 0x80);
        }
    }
}

/// Decode a LEB128 value from `buf` starting at `pos`. Returns the value and
/// the new position.
pub fn decode_u64(buf: &[u8], pos: usize) -> QbResult<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let byte = *buf
            .get(p)
            .ok_or_else(|| QbError::Codec("truncated varint".into()))?;
        p += 1;
        if shift >= 64 {
            return Err(QbError::Codec("varint overflow".into()));
        }
        let low = (byte & 0x7f) as u64;
        // Reject bits that would be shifted out of range.
        if shift == 63 && low > 1 {
            return Err(QbError::Codec("varint overflow".into()));
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, p));
        }
        shift += 7;
    }
}

/// Encode a full slice of u64 values.
pub fn encode_slice(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        encode_u64(v, &mut out);
    }
    out
}

/// Decode exactly `count` values from `buf` starting at `pos`.
pub fn decode_count(buf: &[u8], pos: usize, count: usize) -> QbResult<(Vec<u64>, usize)> {
    let mut out = Vec::with_capacity(count);
    let mut p = pos;
    for _ in 0..count {
        let (v, np) = decode_u64(buf, p)?;
        out.push(v);
        p = np;
    }
    Ok((out, p))
}

/// Number of bytes the LEB128 encoding of `value` occupies.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let mut out = Vec::new();
        assert_eq!(encode_u64(0, &mut out), 1);
        assert_eq!(out, vec![0x00]);
        out.clear();
        assert_eq!(encode_u64(127, &mut out), 1);
        assert_eq!(out, vec![0x7f]);
        out.clear();
        assert_eq!(encode_u64(128, &mut out), 2);
        assert_eq!(out, vec![0x80, 0x01]);
        out.clear();
        assert_eq!(encode_u64(300, &mut out), 2);
        assert_eq!(out, vec![0xac, 0x02]);
    }

    #[test]
    fn max_value_round_trips() {
        let mut out = Vec::new();
        encode_u64(u64::MAX, &mut out);
        assert_eq!(out.len(), 10);
        let (v, p) = decode_u64(&out, 0).unwrap();
        assert_eq!(v, u64::MAX);
        assert_eq!(p, 10);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut out = Vec::new();
        encode_u64(1 << 40, &mut out);
        out.pop();
        assert!(matches!(decode_u64(&out, 0), Err(QbError::Codec(_))));
        assert!(matches!(decode_u64(&[], 0), Err(QbError::Codec(_))));
    }

    #[test]
    fn overflowing_input_is_an_error() {
        // 11 continuation bytes can never be a valid u64.
        let buf = vec![0xffu8; 11];
        assert!(matches!(decode_u64(&buf, 0), Err(QbError::Codec(_))));
    }

    #[test]
    fn encoded_len_matches_actual() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            let n = encode_u64(v, &mut out);
            assert_eq!(n, encoded_len(v), "value {v}");
            assert_eq!(out.len(), encoded_len(v));
        }
    }

    #[test]
    fn slice_round_trip() {
        let values = vec![0u64, 5, 1000, 123456789, u64::MAX];
        let buf = encode_slice(&values);
        let (decoded, pos) = decode_count(&buf, 0, values.len()).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(pos, buf.len());
    }

    proptest! {
        #[test]
        fn round_trip_single(v in any::<u64>()) {
            let mut out = Vec::new();
            encode_u64(v, &mut out);
            let (decoded, pos) = decode_u64(&out, 0).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn round_trip_sequence(values in proptest::collection::vec(any::<u64>(), 0..200)) {
            let buf = encode_slice(&values);
            let (decoded, pos) = decode_count(&buf, 0, values.len()).unwrap();
            prop_assert_eq!(decoded, values);
            prop_assert_eq!(pos, buf.len());
        }
    }
}
