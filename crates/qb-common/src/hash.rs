//! SHA-256 and the 256-bit digest type used for content addressing.
//!
//! The DWeb's tamper-proof property rests entirely on content being addressed
//! by a cryptographic hash. We implement SHA-256 (FIPS 180-4) directly rather
//! than pulling an external crate; the implementation is validated against
//! the official test vectors in the unit tests below.

use crate::hex;
use std::fmt;

/// A 256-bit digest. Used as the content identifier of blocks and pages, as
/// DHT keys and as node identifiers (all share the same key space, exactly as
/// in Kademlia-based systems such as IPFS).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero digest; used as a sentinel (e.g. "no previous version").
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Hash arbitrary bytes.
    pub fn digest(data: &[u8]) -> Hash256 {
        sha256(data)
    }

    /// Hash the concatenation of several byte strings (used for domain
    /// separation, e.g. `Hash256::digest_parts(&[b"idx:", term.as_bytes()])`).
    pub fn digest_parts(parts: &[&[u8]]) -> Hash256 {
        let mut hasher = Sha256::new();
        for p in parts {
            hasher.update(p);
        }
        Hash256(hasher.finalize())
    }

    /// Raw bytes of the digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Construct from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Hash256 {
        Hash256(bytes)
    }

    /// Lowercase hex representation (64 chars).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Short prefix used in log output and tables.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }

    /// Parse from a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Hash256> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Some(Hash256(out))
    }

    /// XOR distance between two digests interpreted as 256-bit integers
    /// (the Kademlia metric). Returned as a 32-byte big-endian value.
    pub fn xor(&self, other: &Hash256) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            *o = a ^ b;
        }
        out
    }

    /// Number of leading zero bits of the XOR distance to `other`; equals
    /// 256 when the two digests are identical. Used to select k-buckets.
    pub fn common_prefix_len(&self, other: &Hash256) -> usize {
        let x = self.xor(other);
        let mut count = 0;
        for byte in x {
            if byte == 0 {
                count += 8;
            } else {
                count += byte.leading_zeros() as usize;
                break;
            }
        }
        count
    }

    /// Compare XOR distances: is `self` closer to `target` than `other` is?
    pub fn closer_to(&self, other: &Hash256, target: &Hash256) -> bool {
        self.xor(target) < other.xor(target)
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({})", self.short())
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Convenience function: SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut hasher = Sha256::new();
    hasher.update(data);
    Hash256(hasher.finalize())
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher (FIPS 180-4).
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finish and return the digest bytes.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of zero bytes so that (len + 1 + zeros + 8) % 64 == 0.
        let rem = (self.buffer_len + 1 + 8) % 64;
        let zeros = if rem == 0 { 0 } else { 64 - rem };
        let mut tail = Vec::with_capacity(1 + zeros + 8);
        tail.extend_from_slice(&pad[..1 + zeros]);
        tail.extend_from_slice(&bit_len.to_be_bytes());
        self.update_no_len(&tail);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_no_len(&mut self, data: &[u8]) {
        // Same as update but without counting towards total_len (padding).
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn empty_string_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(Hash256(h.finalize()), one_shot);
    }

    #[test]
    fn digest_parts_matches_concat() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(Hash256::digest_parts(&[a, b]), sha256(b"hello world"));
    }

    #[test]
    fn hex_round_trip() {
        let h = sha256(b"round trip");
        assert_eq!(Hash256::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex("ab"), None); // too short
    }

    #[test]
    fn xor_distance_properties_basic() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_eq!(a.xor(&a), [0u8; 32]);
        assert_eq!(a.xor(&b), b.xor(&a));
        assert_eq!(a.common_prefix_len(&a), 256);
    }

    #[test]
    fn closer_to_is_a_strict_order() {
        let t = sha256(b"target");
        let a = sha256(b"a");
        let b = sha256(b"b");
        if a != b {
            assert_ne!(a.closer_to(&b, &t), b.closer_to(&a, &t));
        }
        assert!(!a.closer_to(&a, &t));
    }

    proptest! {
        #[test]
        fn streaming_equals_oneshot_prop(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                          chunk in 1usize..97) {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            prop_assert_eq!(Hash256(h.finalize()), sha256(&data));
        }

        #[test]
        fn different_inputs_different_digests(a in proptest::collection::vec(any::<u8>(), 0..256),
                                              b in proptest::collection::vec(any::<u8>(), 0..256)) {
            if a != b {
                prop_assert_ne!(sha256(&a), sha256(&b));
            } else {
                prop_assert_eq!(sha256(&a), sha256(&b));
            }
        }

        #[test]
        fn common_prefix_len_symmetric(a in any::<[u8;32]>(), b in any::<[u8;32]>()) {
            let ha = Hash256(a);
            let hb = Hash256(b);
            prop_assert_eq!(ha.common_prefix_len(&hb), hb.common_prefix_len(&ha));
        }
    }
}
