//! Deterministic log-bucketed latency histogram.
//!
//! The open-loop load harness needs tail percentiles (p50/p99/p999) over
//! millions of per-query sojourn times without keeping the samples. This
//! histogram buckets microsecond values like HDR histograms do: values
//! below 64µs get exact unit buckets, and every power-of-two range above
//! that is split into 32 linear sub-buckets, bounding the relative
//! quantization error at ~3.1%. Bucketing is pure integer arithmetic on
//! the value, so two runs that record the same samples — in any order —
//! produce bit-identical histograms, and [`LatencyHistogram::merge`] of
//! per-frontend histograms equals the histogram of the concatenated
//! samples (property-tested).

use crate::time::SimDuration;

/// Sub-buckets per power-of-two octave (32 → ≤3.125% relative error).
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values below this are counted in exact unit buckets.
const LINEAR_CUTOFF: u64 = 1 << (SUB_BITS + 1);
/// First octave handled by the logarithmic region.
const FIRST_EXP: u32 = SUB_BITS + 1;

/// A fixed-layout histogram of [`SimDuration`] samples with deterministic
/// log-bucketed percentiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sparse-tail bucket counts; indexes follow [`bucket_index`].
    counts: Vec<u64>,
    total: u64,
    sum_micros: u64,
    max_micros: u64,
}

/// Bucket index of a microsecond value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v ∈ [2^exp, 2^(exp+1)), exp ≥ 6
    let sub = (v >> (exp - SUB_BITS)) - SUB_COUNT;
    LINEAR_CUTOFF as usize + ((exp - FIRST_EXP) as usize * SUB_COUNT as usize) + sub as usize
}

/// Largest value falling into bucket `i` (the value percentile queries
/// report, so a percentile never understates the samples in its bucket).
fn bucket_upper_bound(i: usize) -> u64 {
    if (i as u64) < LINEAR_CUTOFF {
        return i as u64;
    }
    let off = i as u64 - LINEAR_CUTOFF;
    let exp = FIRST_EXP + (off / SUB_COUNT) as u32;
    let sub = off % SUB_COUNT;
    let width = 1u64 << (exp - SUB_BITS);
    (SUB_COUNT + sub) * width + (width - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.record_micros(d.as_micros());
    }

    /// Record one sample given in microseconds.
    pub fn record_micros(&mut self, v: u64) {
        let i = bucket_index(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.total += 1;
        self.sum_micros = self.sum_micros.saturating_add(v);
        self.max_micros = self.max_micros.max(v);
    }

    /// Fold another histogram into this one. Merging per-frontend
    /// histograms is exactly equivalent to recording the concatenated
    /// sample streams into one histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// What was recorded between `earlier` and `self`, assuming `earlier`
    /// is a prefix of this histogram's sample stream (bucket counts
    /// subtract saturating, so a non-prefix argument degrades gracefully
    /// instead of panicking). The difference's `max` is this histogram's
    /// max — the true interval max is not recoverable from buckets, so the
    /// reported value is a documented upper bound. Empty differences
    /// collapse to the default histogram so `h.diff_since(&h)` is `==` to
    /// `LatencyHistogram::new()`.
    pub fn diff_since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let total = self.total.saturating_sub(earlier.total);
        if total == 0 {
            return LatencyHistogram::new();
        }
        let mut counts = self.counts.clone();
        for (i, &c) in earlier.counts.iter().enumerate() {
            if i >= counts.len() {
                break;
            }
            counts[i] = counts[i].saturating_sub(c);
        }
        while counts.last() == Some(&0) {
            counts.pop();
        }
        LatencyHistogram {
            counts,
            total,
            sum_micros: self.sum_micros.saturating_sub(earlier.sum_micros),
            max_micros: self.max_micros,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_micros)
    }

    /// Mean of the recorded samples (exact sum over exact count).
    pub fn mean(&self) -> SimDuration {
        match self.sum_micros.checked_div(self.total) {
            Some(mean) => SimDuration::from_micros(mean),
            None => SimDuration::ZERO,
        }
    }

    /// The value at quantile `q` ∈ [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)` (so the
    /// reported value is ≥ at least `q` of the samples). Zero when empty.
    pub fn value_at_quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact and always ≥ every bucket member, so
                // the top bucket reports it instead of its upper bound.
                return SimDuration::from_micros(bucket_upper_bound(i).min(self.max_micros));
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> SimDuration {
        self.value_at_quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimDuration {
        self.value_at_quantile(0.999)
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} p999={} max={}",
            self.total,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact_below_the_linear_cutoff() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket indexes never decrease as values grow.
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            65_535,
            65_536,
            1 << 20,
            (1 << 21) - 1,
            u64::MAX >> 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(bucket_upper_bound(i) >= v, "upper bound below {v}");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v, "wrong bucket for {v}");
            }
            prev = i;
        }
    }

    #[test]
    fn relative_error_is_bounded_in_the_log_region() {
        for v in [100u64, 1_000, 10_000, 123_456, 9_876_543] {
            let ub = bucket_upper_bound(bucket_index(v));
            let err = (ub - v) as f64 / v as f64;
            assert!(err <= 0.04, "value {v}: bound {ub}, error {err}");
        }
    }

    #[test]
    fn percentiles_on_a_known_uniform_distribution() {
        // 1..=1000µs once each: p50 ≈ 500, p99 ≈ 990, p999 ≈ 999, within
        // the ≤3.125% bucket quantization.
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 1000);
        let close = |got: SimDuration, want: f64| {
            let g = got.as_micros() as f64;
            assert!(
                g >= want && g <= want * 1.04,
                "got {g}µs for expected ~{want}µs"
            );
        };
        close(h.p50(), 500.0);
        close(h.p99(), 990.0);
        close(h.p999(), 999.0);
        assert_eq!(h.max().as_micros(), 1000);
        assert_eq!(h.mean().as_micros(), 500);
    }

    #[test]
    fn exact_region_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record_micros(v);
        }
        assert_eq!(h.p50().as_micros(), 5);
        assert_eq!(h.value_at_quantile(1.0).as_micros(), 10);
        assert_eq!(h.value_at_quantile(0.0).as_micros(), 1);
    }

    #[test]
    fn skewed_distribution_tail_is_visible() {
        // 980 fast samples and 20 slow ones: p50 stays fast, p99/p999
        // surface the tail.
        let mut h = LatencyHistogram::new();
        for _ in 0..980 {
            h.record_micros(200);
        }
        for _ in 0..20 {
            h.record_micros(50_000);
        }
        assert!(h.p50().as_micros() <= 207);
        assert!(h.p99().as_micros() >= 50_000);
        assert!(h.p999().as_micros() >= 50_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), SimDuration::ZERO);
        assert_eq!(h.p999(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn display_is_compact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(3));
        let s = h.to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }

    #[test]
    fn diff_since_recovers_the_suffix() {
        let mut before = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            before.record_micros(v);
        }
        let mut after = before.clone();
        for v in [400u64, 50_000] {
            after.record_micros(v);
        }
        let d = after.diff_since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.mean().as_micros(), (400 + 50_000) / 2);
        assert!(d.p99().as_micros() >= 50_000);
        // Self-diff is exactly the empty histogram.
        assert_eq!(after.diff_since(&after), LatencyHistogram::new());
    }

    proptest! {
        #[test]
        fn diff_since_equals_histogram_of_the_suffix_samples(
            prefix in proptest::collection::vec(0u64..2_000_000, 0..200),
            suffix in proptest::collection::vec(0u64..2_000_000, 1..200),
        ) {
            let mut before = LatencyHistogram::new();
            for &v in &prefix {
                before.record_micros(v);
            }
            let mut after = before.clone();
            let mut expect = LatencyHistogram::new();
            for &v in &suffix {
                after.record_micros(v);
                expect.record_micros(v);
            }
            let got = after.diff_since(&before);
            prop_assert_eq!(got.count(), expect.count());
            prop_assert_eq!(got.mean(), expect.mean());
            // The diff inherits the full histogram's exact max (the
            // interval max is not recoverable), so top-bucket quantiles
            // may sit anywhere in the bucket — within quantization error.
            let (g, e) = (got.p50().as_micros(), expect.p50().as_micros());
            prop_assert!(
                g >= e && g as f64 <= e as f64 * 1.04 + 1.0,
                "diff p50 {} vs suffix p50 {}",
                g,
                e
            );
        }

        #[test]
        fn merged_histograms_equal_histogram_of_concatenated_samples(
            a in proptest::collection::vec(0u64..2_000_000, 0..200),
            b in proptest::collection::vec(0u64..2_000_000, 0..200),
        ) {
            let mut ha = LatencyHistogram::new();
            let mut hb = LatencyHistogram::new();
            for &v in &a {
                ha.record_micros(v);
            }
            for &v in &b {
                hb.record_micros(v);
            }
            let mut merged = ha.clone();
            merged.merge(&hb);
            let mut concat = LatencyHistogram::new();
            for &v in a.iter().chain(&b) {
                concat.record_micros(v);
            }
            prop_assert_eq!(merged, concat);
        }

        #[test]
        fn percentile_never_understates_its_rank(
            samples in proptest::collection::vec(0u64..10_000_000, 1..300),
        ) {
            let mut h = LatencyHistogram::new();
            for &v in &samples {
                h.record_micros(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5f64, 0.99, 0.999] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[rank];
                let got = h.value_at_quantile(q).as_micros();
                prop_assert!(got >= exact, "q={} got {} exact {}", q, got, exact);
                // ...and never overstates past the bucket error.
                prop_assert!(
                    got as f64 <= exact as f64 * 1.04 + 1.0,
                    "q={} got {} exact {}",
                    q,
                    got,
                    exact
                );
            }
        }
    }
}
