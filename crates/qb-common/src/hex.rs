//! Minimal lowercase hexadecimal encoding/decoding.

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encode bytes as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX_CHARS[(b >> 4) as usize] as char);
        out.push(HEX_CHARS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hex string (upper- or lowercase). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_known() {
        assert_eq!(decode("00ff10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(decode("00FF10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(decode(""), Some(vec![]));
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(decode("0"), None);
        assert_eq!(decode("zz"), None);
        assert_eq!(decode("0g"), None);
    }

    proptest! {
        #[test]
        fn round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(decode(&encode(&data)), Some(data));
        }
    }
}
