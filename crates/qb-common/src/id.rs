//! Identifier types: node ids, content ids and DHT keys.
//!
//! All three live in the same 256-bit key space (as in Kademlia / IPFS),
//! which is what lets content be stored "at" the nodes whose ids are closest
//! to the content's key.

use crate::hash::{sha256, Hash256};
use std::fmt;

/// Identifier of a peer/node in the simulated DWeb. The small integer
/// `index` is the handle used by the network simulator; the 256-bit `key` is
/// the position of the node in the DHT key space (derived from the index so
/// that simulations are deterministic).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId {
    /// Dense index assigned by the simulator (0..n).
    pub index: u64,
    /// Position in the 256-bit Kademlia key space.
    pub key: Hash256,
}

impl NodeId {
    /// Derive a node id from a dense simulator index.
    pub fn from_index(index: u64) -> NodeId {
        let key = Hash256::digest_parts(&[b"node:", &index.to_be_bytes()]);
        NodeId { index, key }
    }

    /// Derive a node id from an arbitrary label (useful in tests).
    pub fn from_label(index: u64, label: &str) -> NodeId {
        let key = Hash256::digest_parts(&[b"node-label:", label.as_bytes()]);
        NodeId { index, key }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node#{}({})", self.index, self.key.short())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.index)
    }
}

/// Content identifier: the SHA-256 digest of the content bytes. Two contents
/// are identical exactly when their `Cid`s are equal, which is the basis of
/// the DWeb's tamper-proofness.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Cid(pub Hash256);

impl Cid {
    /// Compute the cid of a blob.
    pub fn for_data(data: &[u8]) -> Cid {
        Cid(sha256(data))
    }

    /// The DHT key under which provider records for this content are stored.
    pub fn to_dht_key(&self) -> DhtKey {
        DhtKey(self.0)
    }

    /// Verify that `data` actually hashes to this cid.
    pub fn verify(&self, data: &[u8]) -> bool {
        sha256(data) == self.0
    }

    /// Hex representation.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }

    /// Short prefix for logs and tables.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl fmt::Debug for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cid({})", self.0.short())
    }
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.to_hex())
    }
}

/// A key in the DHT key space. Index shards, provider records and name
/// registry pointers all map to `DhtKey`s.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct DhtKey(pub Hash256);

impl DhtKey {
    /// Key for an inverted-index shard of `term`.
    pub fn for_term(term: &str) -> DhtKey {
        DhtKey(Hash256::digest_parts(&[b"idx:", term.as_bytes()]))
    }

    /// Key for the page-name registry entry of `name`
    /// (the DWeb analogue of a DNS/IPNS name).
    pub fn for_page_name(name: &str) -> DhtKey {
        DhtKey(Hash256::digest_parts(&[b"page:", name.as_bytes()]))
    }

    /// Key for the rank-vector block `block_id`.
    pub fn for_rank_block(block_id: u64) -> DhtKey {
        DhtKey(Hash256::digest_parts(&[b"rank:", &block_id.to_be_bytes()]))
    }

    /// Key from arbitrary bytes (generic records).
    pub fn from_bytes(data: &[u8]) -> DhtKey {
        DhtKey(sha256(data))
    }

    /// XOR distance to a node id.
    pub fn distance_to(&self, node: &Hash256) -> [u8; 32] {
        self.0.xor(node)
    }

    /// Hex representation.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl fmt::Debug for DhtKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DhtKey({})", self.0.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn node_ids_are_deterministic_and_distinct() {
        let a = NodeId::from_index(1);
        let b = NodeId::from_index(1);
        let c = NodeId::from_index(2);
        assert_eq!(a, b);
        assert_ne!(a.key, c.key);
        assert_eq!(a.index, 1);
    }

    #[test]
    fn cid_verification_detects_tampering() {
        let data = b"the original page body";
        let cid = Cid::for_data(data);
        assert!(cid.verify(data));
        let mut tampered = data.to_vec();
        tampered[0] ^= 1;
        assert!(!cid.verify(&tampered));
    }

    #[test]
    fn term_keys_are_domain_separated_from_page_keys() {
        // A term and a page with the same string must not collide.
        assert_ne!(DhtKey::for_term("rust").0, DhtKey::for_page_name("rust").0);
        assert_ne!(DhtKey::for_term("rust").0, Cid::for_data(b"rust").0);
    }

    #[test]
    fn rank_block_keys_distinct() {
        assert_ne!(DhtKey::for_rank_block(0), DhtKey::for_rank_block(1));
    }

    #[test]
    fn display_forms() {
        let n = NodeId::from_index(7);
        assert_eq!(n.to_string(), "node#7");
        let cid = Cid::for_data(b"x");
        assert_eq!(cid.to_string().len(), 64);
    }

    proptest! {
        #[test]
        fn cids_injective_on_distinct_data(a in proptest::collection::vec(any::<u8>(), 0..128),
                                           b in proptest::collection::vec(any::<u8>(), 0..128)) {
            if a != b {
                prop_assert_ne!(Cid::for_data(&a), Cid::for_data(&b));
            }
        }

        #[test]
        fn term_key_deterministic(term in "[a-z]{1,16}") {
            prop_assert_eq!(DhtKey::for_term(&term), DhtKey::for_term(&term));
        }
    }
}
