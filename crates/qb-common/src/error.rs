//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the QueenBee crates.
pub type QbResult<T> = Result<T, QbError>;

/// The unified error type for the QueenBee reproduction.
///
/// Each variant corresponds to a failure mode of one of the subsystems
/// described in DESIGN.md. Keeping a single error enum (rather than one per
/// crate) keeps the cross-crate plumbing in `qb-queenbee` simple and lets the
/// experiment harness classify failures uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbError {
    /// A block, page or record was requested but cannot be found anywhere
    /// reachable (local store, providers, replicas).
    NotFound(String),
    /// Content failed cryptographic verification: the data does not hash to
    /// the identifier it was addressed by. This is the tamper-detection path.
    IntegrityViolation { expected: String, actual: String },
    /// The simulated network could not deliver a message (target offline,
    /// partitioned away, or the message was dropped).
    Network(String),
    /// A DHT lookup terminated without locating the requested key.
    DhtLookupFailed(String),
    /// A blockchain transaction was rejected (bad nonce, insufficient honey,
    /// unknown contract, contract-level revert).
    TxRejected(String),
    /// A smart-contract invocation reverted with a reason string.
    ContractRevert(String),
    /// Codec failure (varint overflow, truncated posting list, bad manifest).
    Codec(String),
    /// A query could not be executed (e.g. empty after stopword removal).
    Query(String),
    /// Invalid configuration supplied by the caller.
    Config(String),
    /// An operation was attempted on a node that is offline in the simulation.
    NodeOffline(u64),
}

impl fmt::Display for QbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbError::NotFound(what) => write!(f, "not found: {what}"),
            QbError::IntegrityViolation { expected, actual } => write!(
                f,
                "integrity violation: expected content hash {expected}, got {actual}"
            ),
            QbError::Network(msg) => write!(f, "network error: {msg}"),
            QbError::DhtLookupFailed(key) => write!(f, "DHT lookup failed for key {key}"),
            QbError::TxRejected(msg) => write!(f, "transaction rejected: {msg}"),
            QbError::ContractRevert(msg) => write!(f, "contract reverted: {msg}"),
            QbError::Codec(msg) => write!(f, "codec error: {msg}"),
            QbError::Query(msg) => write!(f, "query error: {msg}"),
            QbError::Config(msg) => write!(f, "configuration error: {msg}"),
            QbError::NodeOffline(id) => write!(f, "node {id} is offline"),
        }
    }
}

impl std::error::Error for QbError {}

impl QbError {
    /// True when the error represents a (possibly transient) availability
    /// problem rather than a logic error. The resilience experiments count
    /// these as "unavailable" rather than "failed".
    pub fn is_availability(&self) -> bool {
        matches!(
            self,
            QbError::Network(_)
                | QbError::DhtLookupFailed(_)
                | QbError::NodeOffline(_)
                | QbError::NotFound(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QbError::NotFound("block abc".into());
        assert!(e.to_string().contains("block abc"));
        let e = QbError::IntegrityViolation {
            expected: "aa".into(),
            actual: "bb".into(),
        };
        assert!(e.to_string().contains("aa"));
        assert!(e.to_string().contains("bb"));
    }

    #[test]
    fn availability_classification() {
        assert!(QbError::Network("x".into()).is_availability());
        assert!(QbError::NodeOffline(3).is_availability());
        assert!(QbError::DhtLookupFailed("k".into()).is_availability());
        assert!(!QbError::TxRejected("bad nonce".into()).is_availability());
        assert!(!QbError::Codec("trunc".into()).is_availability());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&QbError::Query("empty".into()));
    }
}
