//! Critical-path extraction over a span tree.
//!
//! The critical path answers "which stage bounded this root span's
//! duration?". Starting from the root's end, the walk repeatedly descends
//! into the child whose end is latest but not past the cursor, moves the
//! cursor to that child's start, and repeats inside the child; gaps
//! between steps are charged to the span being walked (its *self time*).
//! Summing self time per stage name gives an attribution map whose total
//! is exactly the root's duration.

use std::collections::BTreeMap;

use qb_common::{SimDuration, SimInstant};

use crate::span::{Span, SpanId, Trace};

/// One step of a critical path, in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The span this step belongs to.
    pub id: SpanId,
    /// Stage name of that span.
    pub name: &'static str,
    /// Detail label of that span.
    pub detail: String,
    /// Where this step's charged interval starts.
    pub start: SimInstant,
    /// Where this step's charged interval ends.
    pub end: SimInstant,
    /// Time charged to this span itself (excludes descendants on the path).
    pub self_time: SimDuration,
}

/// Extract the critical path of `root`: the chain of spans that bounded
/// its completion, chronological, with per-span self time. Empty when the
/// id is unknown.
pub fn critical_path(trace: &Trace, root: SpanId) -> Vec<PathStep> {
    let Some(span) = trace.get(root) else {
        return Vec::new();
    };
    let mut steps = Vec::new();
    walk(trace, span, span.end, &mut steps);
    steps.reverse();
    steps
}

/// Walk backwards from `cursor` inside `span`, pushing steps in reverse
/// chronological order.
fn walk(trace: &Trace, span: &Span, mut cursor: SimInstant, steps: &mut Vec<PathStep>) {
    let step_end = cursor;
    loop {
        // The child that finishes latest without overshooting the cursor
        // is the one the remaining interval waited on. Ties break towards
        // the later start (the tighter bound), then the higher id, so the
        // choice is deterministic.
        let next = trace
            .children(span.id)
            .filter(|c| c.end <= cursor && c.start < cursor)
            .max_by_key(|c| (c.end, c.start, c.id));
        match next {
            Some(child) => {
                walk(trace, child, child.end, steps);
                cursor = child.start;
            }
            None => {
                steps.push(PathStep {
                    id: span.id,
                    name: span.name,
                    detail: span.detail.clone(),
                    start: span.start,
                    end: step_end,
                    self_time: sum_self(trace, span, step_end),
                });
                return;
            }
        }
    }
}

/// Self time of `span` on the path ending at `end`: `end - start` minus
/// the on-path children's covered intervals.
fn sum_self(trace: &Trace, span: &Span, end: SimInstant) -> SimDuration {
    let mut cursor = end;
    let mut self_time = SimDuration::ZERO;
    loop {
        let next = trace
            .children(span.id)
            .filter(|c| c.end <= cursor && c.start < cursor)
            .max_by_key(|c| (c.end, c.start, c.id));
        match next {
            Some(child) => {
                self_time += cursor.since(child.end);
                cursor = child.start;
            }
            None => {
                self_time += cursor.since(span.start);
                return self_time;
            }
        }
    }
}

/// Sum the critical path's self time per stage name. The values add up to
/// the root span's duration.
pub fn attribution(trace: &Trace, root: SpanId) -> BTreeMap<&'static str, SimDuration> {
    let mut out: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
    for step in critical_path(trace, root) {
        *out.entry(step.name).or_insert(SimDuration::ZERO) += step.self_time;
    }
    out
}

/// The stage name with the largest attributed share of `root`'s duration
/// (ties break lexicographically; `None` for an unknown id or zero-length
/// root).
pub fn dominant(trace: &Trace, root: SpanId) -> Option<&'static str> {
    attribution(trace, root)
        .into_iter()
        .filter(|(_, d)| *d > SimDuration::ZERO)
        .max_by_key(|&(name, d)| (d, std::cmp::Reverse(name)))
        .map(|(name, _)| name)
}

/// Render a critical path as indented text, one step per line.
pub fn render_path(steps: &[PathStep]) -> String {
    let mut out = String::new();
    for step in steps {
        let detail = if step.detail.is_empty() {
            String::new()
        } else {
            format!(" [{}]", step.detail)
        };
        out.push_str(&format!(
            "{:>10} .. {:>10}  {:<12} self={}{}\n",
            step.start.as_micros(),
            step.end.as_micros(),
            step.name,
            step.self_time,
            detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn t(us: u64) -> SimInstant {
        SimInstant(us)
    }

    /// query[0,100] { queue[0,30], fetch[30,90] { rpc[35,80] } }
    fn sample() -> (Trace, SpanId) {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        let q = tr.open("query", t(0));
        tr.record(None, "queue_wait", t(0), t(30));
        let f = tr.open("fetch", t(30));
        tr.record(None, "rpc", t(35), t(80));
        tr.close(f, t(90));
        tr.close(q, t(100));
        (tr.take(), q.unwrap())
    }

    #[test]
    fn path_is_chronological_and_covers_the_root() {
        let (trace, root) = sample();
        let steps = critical_path(&trace, root);
        let names: Vec<_> = steps.iter().map(|s| s.name).collect();
        assert_eq!(names, ["query", "queue_wait", "fetch", "rpc"]);
        for w in steps.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        let total: SimDuration = steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.self_time);
        assert_eq!(total, SimDuration::from_micros(100));
    }

    #[test]
    fn attribution_sums_to_root_duration() {
        let (trace, root) = sample();
        let attr = attribution(&trace, root);
        // queue 30, fetch self = (35-30) + (90-80) = 15, rpc 45, query self = 10.
        assert_eq!(attr["queue_wait"], SimDuration::from_micros(30));
        assert_eq!(attr["rpc"], SimDuration::from_micros(45));
        assert_eq!(attr["fetch"], SimDuration::from_micros(15));
        assert_eq!(attr["query"], SimDuration::from_micros(10));
        assert_eq!(dominant(&trace, root), Some("rpc"));
    }

    #[test]
    fn unknown_root_yields_empty_path() {
        let (trace, _) = sample();
        assert!(critical_path(&trace, SpanId(999)).is_empty());
        assert_eq!(dominant(&trace, SpanId(999)), None);
    }

    #[test]
    fn render_mentions_every_stage() {
        let (trace, root) = sample();
        let text = render_path(&critical_path(&trace, root));
        for name in ["queue_wait", "rpc", "fetch", "query"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
