//! Deterministic observability for the QueenBee stack.
//!
//! Three instruments in one crate, all driven by the simulated clock so a
//! seed fully determines what they record:
//!
//! - **Span trees** ([`Tracer`], [`Trace`]): every serving-path crate
//!   threads the tracer that lives inside `SimNet` — queries, pipeline
//!   windows, RPCs, DHT hops, gossip rounds and admission decisions each
//!   record named intervals on the sim clock. The tracer is off by
//!   default and every call is a no-op branch while disabled, so shipping
//!   the instrumentation costs nothing (asserted by E15: quick-mode E9–E14
//!   metrics are byte-identical with the code compiled in).
//! - **Unified metrics** ([`MetricsSnapshot`], [`MetricsSource`]): the
//!   five per-crate stats structs (`NetStats`, `CacheReport`,
//!   `GossipStats`, `QueryEngineStats`, `LoadReport`) flatten into one
//!   named counter/histogram namespace, diffable between two instants and
//!   exportable as deterministic JSON.
//! - **Analysis + export** ([`critical_path`], [`attribution`],
//!   [`to_chrome_trace`], [`to_json`]): walk a span tree backwards from
//!   its completion to find which stage bounded the sojourn (queue wait vs
//!   link contention vs fetch fan-out vs scoring), and render traces for
//!   `chrome://tracing` / Perfetto or programmatic consumers.
//!
//! # Example
//!
//! ```
//! use qb_common::SimInstant;
//! use qb_trace::{attribution, critical_path, to_chrome_trace, Tracer};
//!
//! let mut tracer = Tracer::new();
//! tracer.set_enabled(true);
//! let query = tracer.open_with("query", SimInstant(0), || "rust dht".into());
//! tracer.record(None, "queue_wait", SimInstant(0), SimInstant(250));
//! let fetch = tracer.open("fetch", SimInstant(250));
//! tracer.record(None, "rpc", SimInstant(260), SimInstant(900));
//! tracer.close(fetch, SimInstant(950));
//! tracer.close(query, SimInstant(1000));
//!
//! let trace = tracer.take();
//! let root = trace.roots().next().unwrap().id;
//! let path = critical_path(&trace, root);
//! assert_eq!(path.last().unwrap().name, "rpc");
//! let attr = attribution(&trace, root);
//! assert_eq!(attr["rpc"].as_micros(), 640);
//! assert!(to_chrome_trace(&trace).contains("\"ph\":\"X\""));
//! ```

pub mod export;
pub mod metrics;
pub mod path;
pub mod span;

pub use export::{to_chrome_trace, to_json};
pub use metrics::{MetricsSnapshot, MetricsSource};
pub use path::{attribution, critical_path, dominant, render_path, PathStep};
pub use span::{Span, SpanId, Trace, Tracer};

#[cfg(test)]
mod invariant_tests {
    //! Property tests for the span-tree invariants the rest of the stack
    //! relies on: children nest within their parents, every span is
    //! forward in time, and identical recording sequences serialize to
    //! identical bytes.

    use proptest::prelude::*;
    use qb_common::SimInstant;

    use crate::span::{Trace, Tracer};

    const NAMES: [&str; 5] = ["query", "fetch", "rpc", "queue_wait", "score"];

    /// Raw op encoding: `(tag, at, len)`. `tag % 3` selects open / close /
    /// record, `tag / 3` the span name (the vendor proptest stand-in has
    /// no `prop_oneof`, so ops decode from plain integer tuples).
    type RawOp = (u64, u64, u64);

    fn op_strategy() -> impl Strategy<Value = RawOp> {
        (0u64..15, 0u64..100_000, 0u64..10_000)
    }

    fn run(ops: &[RawOp]) -> Trace {
        let mut tracer = Tracer::new();
        tracer.set_enabled(true);
        let mut open = Vec::new();
        for &(tag, at, len) in ops {
            let name = NAMES[(tag / 3) as usize % NAMES.len()];
            match tag % 3 {
                0 => open.push(tracer.open(name, SimInstant(at))),
                1 => {
                    if let Some(id) = open.pop() {
                        tracer.close(id, SimInstant(at));
                    }
                }
                _ => {
                    tracer.record(None, name, SimInstant(at), SimInstant(at + len));
                }
            }
        }
        while let Some(id) = open.pop() {
            tracer.close(id, SimInstant(200_000));
        }
        tracer.take()
    }

    proptest! {
        #[test]
        fn children_nest_within_parents_and_time_is_monotone(
            ops in proptest::collection::vec(op_strategy(), 0..60),
        ) {
            let trace = run(&ops);
            for span in &trace.spans {
                prop_assert!(span.start <= span.end, "span {:?} runs backwards", span);
                if let Some(parent) = span.parent {
                    let p = trace.get(parent).unwrap();
                    prop_assert!(
                        p.start <= span.start && span.end <= p.end,
                        "child {:?} escapes parent {:?}",
                        span,
                        p
                    );
                    prop_assert!(parent < span.id, "parent created after child");
                }
            }
        }

        #[test]
        fn same_ops_serialize_to_identical_bytes(
            ops in proptest::collection::vec(op_strategy(), 0..60),
        ) {
            let a = run(&ops);
            let b = run(&ops);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(crate::to_json(&a), crate::to_json(&b));
            prop_assert_eq!(crate::to_chrome_trace(&a), crate::to_chrome_trace(&b));
        }

        #[test]
        fn critical_path_attribution_sums_to_root_duration(
            ops in proptest::collection::vec(op_strategy(), 1..60),
        ) {
            let trace = run(&ops);
            for root in trace.roots() {
                let attr = crate::attribution(&trace, root.id);
                let total = attr
                    .values()
                    .fold(qb_common::SimDuration::ZERO, |acc, &d| acc + d);
                prop_assert_eq!(
                    total,
                    root.duration(),
                    "attribution does not cover root {:?}",
                    root
                );
            }
        }
    }
}
