//! Spans and the [`Tracer`] that records them.
//!
//! A span is a named interval on the simulated clock with an optional
//! parent; a trace is the flat list of spans one measurement produced. The
//! tracer enforces well-nesting *by construction*: a child's start is
//! clamped into its parent's interval and every recorded end is propagated
//! up the parent chain, so `child ⊆ parent` holds for arbitrary call
//! sequences (property-tested in the crate root). Span ids are handed out
//! sequentially, timestamps come from the callers' [`SimInstant`]s, and no
//! wall clock or randomness is consulted anywhere — two runs with the same
//! seed serialize to byte-identical traces.
//!
//! The tracer is **off by default** and every entry point is a no-op while
//! disabled: it returns `None`, allocates nothing and never evaluates the
//! lazy `detail` closure, so an instrumented hot path costs one branch.

use qb_common::SimInstant;

/// Identifier of one span within a [`Trace`] (1-based, in creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One named interval on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id (1-based index into [`Trace::spans`]).
    pub id: SpanId,
    /// Enclosing span, `None` for a root.
    pub parent: Option<SpanId>,
    /// Stage name (`"query"`, `"fetch"`, `"rpc"`, ...). Static so recording
    /// a span never allocates for the name.
    pub name: &'static str,
    /// Free-form label (query text, link endpoints, term); empty unless the
    /// call site provided one.
    pub detail: String,
    /// Interval start.
    pub start: SimInstant,
    /// Interval end (`>= start`; grown automatically to cover children).
    pub end: SimInstant,
}

impl Span {
    /// Length of the interval.
    pub fn duration(&self) -> qb_common::SimDuration {
        self.end.since(self.start)
    }
}

/// Records spans against the simulated clock. Disabled by default; see the
/// module docs for the guarantees.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<Span>,
    /// Open spans, outermost first; the top is the default parent.
    stack: Vec<SpanId>,
}

impl Tracer {
    /// A disabled tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Turn recording on or off. Turning it off mid-trace keeps what was
    /// already recorded (drain with [`Tracer::take`]).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is the tracer recording? Call sites guard expensive detail
    /// construction behind this (the lazy closures make that automatic).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The innermost open span (the default parent of new spans).
    pub fn current(&self) -> Option<SpanId> {
        self.stack.last().copied()
    }

    /// Open a span starting at `start` under the innermost open span, and
    /// make it the new default parent. Returns `None` while disabled.
    pub fn open(&mut self, name: &'static str, start: SimInstant) -> Option<SpanId> {
        self.open_with(name, start, String::new)
    }

    /// [`Tracer::open`] with a lazy detail label (evaluated only while
    /// recording).
    pub fn open_with(
        &mut self,
        name: &'static str,
        start: SimInstant,
        detail: impl FnOnce() -> String,
    ) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        let id = self.push(self.current(), name, detail(), start, start);
        self.stack.push(id);
        Some(id)
    }

    /// Close an open span at `end` (its end also covers any children that
    /// outran the requested instant). `None` ids — from calls made while
    /// disabled — are ignored.
    pub fn close(&mut self, id: Option<SpanId>, end: SimInstant) {
        let Some(id) = id else { return };
        let Some(span) = self.get_mut(id) else {
            return;
        };
        if end > span.end {
            span.end = end;
        }
        let end = span.end;
        let parent = span.parent;
        self.propagate_end(parent, end);
        if let Some(pos) = self.stack.iter().rposition(|&s| s == id) {
            self.stack.truncate(pos);
        }
    }

    /// Record a complete span. `parent` of `None` attaches it under the
    /// innermost open span (or as a root); pass an explicit parent for
    /// spans created off the stack discipline, e.g. on a virtual timeline.
    /// Returns `None` while disabled.
    pub fn record(
        &mut self,
        parent: Option<SpanId>,
        name: &'static str,
        start: SimInstant,
        end: SimInstant,
    ) -> Option<SpanId> {
        self.record_with(parent, name, start, end, String::new)
    }

    /// [`Tracer::record`] with a lazy detail label.
    pub fn record_with(
        &mut self,
        parent: Option<SpanId>,
        name: &'static str,
        start: SimInstant,
        end: SimInstant,
        detail: impl FnOnce() -> String,
    ) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        let parent = parent.or_else(|| self.current());
        Some(self.push(parent, name, detail(), start, end))
    }

    /// Drain everything recorded into a [`Trace`] and reset the id counter,
    /// so consecutive measurements start their traces identically.
    pub fn take(&mut self) -> Trace {
        self.stack.clear();
        Trace {
            spans: std::mem::take(&mut self.spans),
        }
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        self.spans.get_mut((id.0 as usize).checked_sub(1)?)
    }

    /// Insert a span, clamping it into its parent's interval on the start
    /// side and growing ancestors on the end side (the two halves of the
    /// nesting invariant).
    fn push(
        &mut self,
        parent: Option<SpanId>,
        name: &'static str,
        detail: String,
        start: SimInstant,
        end: SimInstant,
    ) -> SpanId {
        let mut start = start;
        if let Some(p) = parent {
            if let Some(pspan) = self.spans.get((p.0 - 1) as usize) {
                start = start.max(pspan.start);
            }
        }
        let end = end.max(start);
        let id = SpanId(self.spans.len() as u64 + 1);
        self.spans.push(Span {
            id,
            parent,
            name,
            detail,
            start,
            end,
        });
        self.propagate_end(parent, end);
        id
    }

    /// Grow every ancestor's end to cover `end`.
    fn propagate_end(&mut self, mut parent: Option<SpanId>, end: SimInstant) {
        while let Some(p) = parent {
            let Some(span) = self.spans.get_mut((p.0 - 1) as usize) else {
                return;
            };
            if span.end >= end {
                return;
            }
            span.end = end;
            parent = span.parent;
        }
    }
}

/// A completed measurement's spans, in creation (= id) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All recorded spans; `spans[i].id == SpanId(i + 1)`.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Look a span up by id.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.get((id.0 as usize).checked_sub(1)?)
    }

    /// Root spans (no parent), in creation order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Direct children of `id`, in creation order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// Spans with the given stage name, in creation order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The root ancestor of a span (itself when it is a root).
    pub fn root_of(&self, id: SpanId) -> SpanId {
        let mut cur = id;
        while let Some(parent) = self.get(cur).and_then(|s| s.parent) {
            cur = parent;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_common::SimDuration;

    fn t(us: u64) -> SimInstant {
        SimInstant(us)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_never_runs_detail_closures() {
        let mut tr = Tracer::new();
        assert!(!tr.is_enabled());
        let id = tr.open_with("query", t(0), || {
            unreachable!("lazy detail ran while disabled")
        });
        assert_eq!(id, None);
        let id = tr.record_with(None, "fetch", t(0), t(5), || {
            unreachable!("lazy detail ran while disabled")
        });
        assert_eq!(id, None);
        tr.close(None, t(9));
        assert!(tr.is_empty());
        assert!(tr.take().is_empty());
    }

    #[test]
    fn stack_discipline_builds_a_tree() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        let root = tr.open("query", t(0));
        let fetch = tr.open("fetch", t(10));
        let rpc = tr.record(None, "rpc", t(10), t(40));
        tr.close(fetch, t(50));
        tr.close(root, t(60));
        let trace = tr.take();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.get(rpc.unwrap()).unwrap().parent, fetch);
        assert_eq!(trace.get(fetch.unwrap()).unwrap().parent, root);
        assert_eq!(trace.roots().count(), 1);
        assert_eq!(trace.root_of(rpc.unwrap()), root.unwrap());
        assert_eq!(
            trace.get(root.unwrap()).unwrap().duration(),
            SimDuration::from_micros(60)
        );
    }

    #[test]
    fn children_grow_their_ancestors_end() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        let root = tr.open("window", t(100));
        // A virtual-timeline fetch completes after the instant the caller
        // will close the window at.
        tr.record(root, "fetch", t(100), t(900));
        tr.close(root, t(100));
        let trace = tr.take();
        assert_eq!(trace.get(root.unwrap()).unwrap().end, t(900));
    }

    #[test]
    fn child_start_is_clamped_into_the_parent() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        let root = tr.open("query", t(50));
        let early = tr.record(root, "fetch", t(10), t(60)).unwrap();
        tr.close(root, t(70));
        let trace = tr.take();
        assert_eq!(trace.get(early).unwrap().start, t(50));
    }

    #[test]
    fn explicit_parent_overrides_the_stack() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        let a = tr.open("a", t(0));
        let b = tr.record(None, "b", t(0), t(1)).unwrap();
        tr.close(a, t(5));
        let c = tr.record(Some(b), "c", t(0), t(1)).unwrap();
        let trace = tr.take();
        assert_eq!(trace.get(c).unwrap().parent, Some(b));
    }

    #[test]
    fn take_resets_ids() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        tr.record(None, "x", t(0), t(1));
        tr.record(None, "y", t(1), t(2));
        let first = tr.take();
        tr.record(None, "x", t(0), t(1));
        let second = tr.take();
        assert_eq!(first.spans[0].id, second.spans[0].id);
        assert_eq!(second.spans[0].id, SpanId(1));
    }
}
