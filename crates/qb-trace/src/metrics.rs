//! Unified metrics registry.
//!
//! Every serving-path crate exports its own stats struct (`NetStats`,
//! `CacheReport`, `GossipStats`, `QueryEngineStats`, `LoadReport`). A
//! [`MetricsSnapshot`] flattens any number of them into one namespace of
//! named counters and [`LatencyHistogram`]s, so experiments can diff two
//! instants (`after.diff_since(&before)`), compare runs for bit-equality,
//! and export everything as one deterministic JSON document. Each stats
//! struct opts in by implementing [`MetricsSource`] in its own crate
//! (avoiding dependency cycles — `qb-trace` only depends on `qb-common`).

use std::collections::BTreeMap;

use qb_common::hist::LatencyHistogram;

/// Anything that can pour its numbers into a [`MetricsSnapshot`] under its
/// own name prefix (`net.*`, `cache.*`, `gossip.*`, `query.*`, `load.*`).
pub trait MetricsSource {
    /// Add this source's counters and histograms to `out`.
    fn metrics_into(&self, out: &mut MetricsSnapshot);
}

/// A flat, diffable snapshot of named counters and latency histograms.
/// `BTreeMap`s keep iteration and serialization order deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Build a snapshot from several sources at once.
    pub fn collect(sources: &[&dyn MetricsSource]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for s in sources {
            s.metrics_into(&mut out);
        }
        out
    }

    /// Add `v` to the named counter (created at zero).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Merge a histogram into the named slot.
    pub fn merge_histogram(&mut self, name: &str, h: &LatencyHistogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when the snapshot holds nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// What happened between `earlier` and `self`: counters subtract
    /// (saturating), histograms subtract bucket-wise. Names missing from
    /// `earlier` count from zero/empty.
    pub fn diff_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, &v) in &self.counters {
            out.counters
                .insert(name.clone(), v.saturating_sub(earlier.counter(name)));
        }
        for (name, h) in &self.histograms {
            let d = match earlier.histograms.get(name) {
                Some(e) => h.diff_since(e),
                None => h.clone(),
            };
            out.histograms.insert(name.clone(), d);
        }
        out
    }

    /// Deterministic JSON rendering: counters verbatim, histograms as
    /// `{count, mean_us, p50_us, p99_us, p999_us, max_us}` summaries.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{:?}:{}", name, v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{:?}:{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
                name,
                h.count(),
                h.mean().as_micros(),
                h.p50().as_micros(),
                h.p99().as_micros(),
                h.p999().as_micros(),
                h.max().as_micros()
            ));
        }
        out.push_str("}}");
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name} = {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "{name}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_common::SimDuration;

    struct Fake;
    impl MetricsSource for Fake {
        fn metrics_into(&self, out: &mut MetricsSnapshot) {
            out.add_counter("fake.ops", 3);
            let mut h = LatencyHistogram::new();
            h.record(SimDuration::from_millis(2));
            out.merge_histogram("fake.latency", &h);
        }
    }

    #[test]
    fn collect_and_lookup() {
        let snap = MetricsSnapshot::collect(&[&Fake, &Fake]);
        assert_eq!(snap.counter("fake.ops"), 6);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histogram("fake.latency").unwrap().count(), 2);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn diff_subtracts_counters_and_histograms() {
        let before = MetricsSnapshot::collect(&[&Fake]);
        let after = MetricsSnapshot::collect(&[&Fake, &Fake]);
        let d = after.diff_since(&before);
        assert_eq!(d.counter("fake.ops"), 3);
        assert_eq!(d.histogram("fake.latency").unwrap().count(), 1);
        // Diffing against an empty snapshot is the identity.
        let id = after.diff_since(&MetricsSnapshot::new());
        assert_eq!(id, after);
    }

    #[test]
    fn equal_sources_produce_equal_snapshots() {
        let a = MetricsSnapshot::collect(&[&Fake]);
        let b = MetricsSnapshot::collect(&[&Fake]);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_ordered_and_parseable_by_eye() {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("b.second", 2);
        snap.add_counter("a.first", 1);
        let json = snap.to_json();
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "{json}");
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
    }
}
