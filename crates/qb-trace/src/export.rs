//! Trace exporters.
//!
//! Two formats, both rendered by hand so the bytes are a pure function of
//! the trace (no map iteration order, float formatting or serializer
//! version can perturb them — same seed, same bytes):
//!
//! - [`to_json`]: the spans verbatim, for programmatic consumers.
//! - [`to_chrome_trace`]: the Chrome trace-event format (complete `"X"`
//!   events, microsecond timestamps), loadable in `chrome://tracing` or
//!   Perfetto. Each root span tree becomes one "thread" (`tid` = root span
//!   id) so concurrent queries render as parallel tracks.

use crate::span::Trace;

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Export a trace as plain JSON: `{"spans": [{id, parent, name, detail,
/// start_us, end_us}, ...]}` with `parent: 0` for roots.
pub fn to_json(trace: &Trace) -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"detail\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
            s.id.0,
            s.parent.map_or(0, |p| p.0),
            json_escape(s.name),
            json_escape(&s.detail),
            s.start.as_micros(),
            s.end.as_micros()
        ));
    }
    out.push_str("]}");
    out
}

/// Export a trace in the Chrome trace-event format (open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>). Spans become complete
/// (`"ph":"X"`) events; the `tid` is the id of the span's root ancestor so
/// each query/window tree gets its own track.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = trace.root_of(s.id).0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"qb\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{},\"detail\":\"{}\"}}}}",
            json_escape(s.name),
            s.start.as_micros(),
            s.end.since(s.start).as_micros(),
            tid,
            s.id.0,
            json_escape(&s.detail)
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use qb_common::SimInstant;

    fn sample() -> Trace {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        let q = tr.open_with("query", SimInstant(10), || "alpha \"beta\"".to_string());
        tr.record(None, "fetch", SimInstant(12), SimInstant(40));
        tr.close(q, SimInstant(50));
        tr.take()
    }

    #[test]
    fn json_round_trips_ids_and_escapes_details() {
        let json = to_json(&sample());
        assert!(json.contains("\"id\":1"), "{json}");
        assert!(json.contains("\"parent\":0"), "{json}");
        assert!(json.contains("\"parent\":1"), "{json}");
        assert!(json.contains("alpha \\\"beta\\\""), "{json}");
        assert!(json.contains("\"start_us\":10"), "{json}");
        assert!(json.contains("\"end_us\":50"), "{json}");
    }

    #[test]
    fn chrome_trace_groups_trees_by_tid() {
        let chrome = to_chrome_trace(&sample());
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        // Both spans share the root's tid.
        assert_eq!(chrome.matches("\"tid\":1").count(), 2, "{chrome}");
        assert!(chrome.contains("\"dur\":40"), "{chrome}");
        assert!(chrome.contains("\"dur\":28"), "{chrome}");
    }

    #[test]
    fn identical_traces_export_identical_bytes() {
        assert_eq!(to_json(&sample()), to_json(&sample()));
        assert_eq!(to_chrome_trace(&sample()), to_chrome_trace(&sample()));
    }

    #[test]
    fn empty_trace_exports_are_valid() {
        let t = Trace::default();
        assert_eq!(to_json(&t), "{\"spans\":[]}");
        assert_eq!(
            to_chrome_trace(&t),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("x\u{1}y"), "x\\u0001y");
        assert_eq!(json_escape("q\\t"), "q\\\\t");
    }
}
