//! Property tests for the segment algebra and the artifact round trip:
//! merge must be a commutative, associative, idempotent fold under
//! per-term version-vector dominance (equal versions folding
//! posting-by-posting through `upsert`), and an exported artifact must
//! survive publish → fetch → import byte-identically.

use proptest::prelude::*;
use qb_cache::{CacheConfig, QueryCache};
use qb_common::SimInstant;
use qb_dht::{DhtConfig, DhtNetwork};
use qb_index::{ShardEntry, ShardPosting};
use qb_segment::{fetch_segment, publish_segment, Segment};
use qb_simnet::{NetConfig, SimNet};
use qb_storage::{StorageConfig, StorageNetwork};
use std::collections::BTreeMap;

/// Posting content is a pure function of `(doc_id, version)` — the same
/// invariant the real pipeline upholds (a posting's payload is derived
/// from the page version it was indexed from), and what makes equal-version
/// `upsert` folds order-independent.
fn posting(doc_id: u64, version: u64) -> ShardPosting {
    ShardPosting {
        doc_id,
        term_freq: (1 + (doc_id + version) % 5) as u32,
        doc_len: (30 + doc_id % 50) as u32,
        name: format!("page/{doc_id}"),
        version,
        creator: doc_id % 7,
    }
}

/// A shard from a generated `(doc_id -> posting version)` map.
fn shard(term_id: u8, version: u64, docs: &BTreeMap<u64, u64>) -> ShardEntry {
    let mut s = ShardEntry::empty(&format!("t{term_id:02}"));
    s.version = version;
    for (&d, &v) in docs {
        s.upsert(posting(d, v));
    }
    s
}

/// Raw generated form of one segment: `term -> (shard version, postings)`
/// over a small shared term pool, so independently generated segments
/// overlap, diverge and collide on versions.
type RawSegment = BTreeMap<u8, (u64, BTreeMap<u64, u64>)>;

/// Strategy producing a [`RawSegment`] (the vendored proptest stand-in has
/// no `prop_map`, so the conversion happens inside the test body).
fn segment_strategy() -> impl Strategy<Value = RawSegment> {
    proptest::collection::btree_map(
        0u8..12,
        (
            1u64..6,
            proptest::collection::btree_map(0u64..30, 1u64..4, 0..8),
        ),
        0..10,
    )
}

fn build(raw: &RawSegment) -> Segment {
    Segment::from_shards(
        raw.iter()
            .map(|(&t, (version, docs))| shard(t, *version, docs)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Merge order never matters — byte-for-byte.
    #[test]
    fn merge_is_commutative(ra in segment_strategy(), rb in segment_strategy()) {
        let (a, b) = (build(&ra), build(&rb));
        let ab = Segment::merge([a.clone(), b.clone()]);
        let ba = Segment::merge([b, a]);
        prop_assert_eq!(ab.encode(), ba.encode());
    }

    /// Grouping never matters: compacting pending segments incrementally
    /// or all at once yields the same artifact.
    #[test]
    fn merge_is_associative(
        ra in segment_strategy(),
        rb in segment_strategy(),
        rc in segment_strategy(),
    ) {
        let (a, b, c) = (build(&ra), build(&rb), build(&rc));
        let left = Segment::merge([Segment::merge([a.clone(), b.clone()]), c.clone()]);
        let right = Segment::merge([a, Segment::merge([b, c])]);
        prop_assert_eq!(left.encode(), right.encode());
    }

    /// Re-merging an already merged artifact changes nothing.
    #[test]
    fn merge_is_idempotent(ra in segment_strategy(), rb in segment_strategy()) {
        let (a, b) = (build(&ra), build(&rb));
        let merged = Segment::merge([a.clone(), b]);
        prop_assert_eq!(
            Segment::merge([merged.clone(), a]).encode(),
            merged.encode()
        );
        prop_assert_eq!(
            Segment::merge([merged.clone(), merged.clone()]).encode(),
            merged.encode()
        );
    }

    /// Per-term version-vector dominance: every merged term carries the
    /// max version of its sides; a strictly newer side wins wholesale
    /// (never a posting union — that would resurrect removed postings),
    /// and equal versions fold posting-by-posting through `upsert`.
    #[test]
    fn merge_respects_version_dominance(
        ra in segment_strategy(),
        rb in segment_strategy(),
    ) {
        let (a, b) = (build(&ra), build(&rb));
        let merged = Segment::merge([a.clone(), b.clone()]);
        let terms: std::collections::BTreeSet<&str> = a
            .version_vector()
            .map(|(t, _)| t)
            .chain(b.version_vector().map(|(t, _)| t))
            .collect();
        prop_assert_eq!(merged.len(), terms.len());
        for term in terms {
            let got = merged.get(term).expect("merged term present");
            match (a.get(term), b.get(term)) {
                (Some(x), None) => prop_assert_eq!(got, x),
                (None, Some(y)) => prop_assert_eq!(got, y),
                (Some(x), Some(y)) => {
                    prop_assert_eq!(got.version, x.version.max(y.version));
                    match x.version.cmp(&y.version) {
                        std::cmp::Ordering::Greater => prop_assert_eq!(got, x),
                        std::cmp::Ordering::Less => prop_assert_eq!(got, y),
                        std::cmp::Ordering::Equal => {
                            let mut folded = x.clone();
                            for p in &y.postings {
                                folded.upsert(p.clone());
                            }
                            prop_assert_eq!(got, &folded);
                        }
                    }
                }
                (None, None) => unreachable!("term came from one side"),
            }
        }
    }
}

proptest! {
    // Each case spins up a network stack; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full artifact path: export a cache's shard tier, publish it as
    /// a chunked DAG + DHT pointer, fetch it from another peer, import it
    /// into a cold cache — and get the exact same bytes back out.
    #[test]
    fn export_publish_fetch_import_round_trips_byte_identically(
        raw in segment_strategy(),
        generation in 1u64..50,
    ) {
        let seg = build(&raw);
        let now = SimInstant::ZERO;
        let mut cache_config = CacheConfig::enabled();
        cache_config.shard_capacity_bytes = 1 << 20; // never the constraint here
        let mut writer = QueryCache::new(cache_config.clone());
        for shard in seg.shards() {
            writer.store_shard(shard, now);
        }
        let exported = Segment::export(&writer, usize::MAX, now);
        prop_assert_eq!(exported.encode(), seg.encode());

        let mut net = SimNet::new(12, NetConfig::lan(), 0xE16);
        let mut dht = DhtNetwork::build(&mut net, DhtConfig::small());
        let mut storage = StorageNetwork::new(12, StorageConfig::small());
        let (sref, _) =
            publish_segment(&mut net, &mut dht, &mut storage, 0, &exported, generation)
                .expect("publish");
        prop_assert_eq!(sref.generation, generation);
        prop_assert_eq!(sref.term_count, seg.len() as u64);

        let (fetched, fref, _) =
            fetch_segment(&mut net, &mut dht, &mut storage, 7, generation).expect("fetch");
        prop_assert_eq!(fref, sref);
        prop_assert_eq!(fetched.encode(), seg.encode());
        prop_assert_eq!(fetched.cid(), seg.cid());

        // Import into a cold cache, then read the artifact back out of it.
        let mut joiner = QueryCache::new(cache_config);
        let report = fetched.import_into(&mut joiner, |_| 0, now);
        prop_assert_eq!(report.accepted, seg.len() as u64);
        prop_assert_eq!(report.offered(), seg.len() as u64);
        let reread = Segment::export(&joiner, usize::MAX, now);
        prop_assert_eq!(reread.encode(), seg.encode());
    }
}
