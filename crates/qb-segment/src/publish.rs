//! Publishing and fetching segments over the content-addressed stack.
//!
//! A segment's canonical bytes go into `qb-storage`'s chunked DAG
//! ([`publish_segment`]); the resulting root cid plus sizing metadata is a
//! small [`SegmentRef`] pointer stored as a versioned DHT record under
//! [`latest_segment_key`], so any peer can discover "the fleet's newest
//! artifact" with one record lookup. [`fetch_segment`] walks the reverse
//! path: resolve the pointer, pull and hash-verify the blocks, decode.
//! Every byte of both directions moves through `SimNet` RPCs inside the
//! storage/DHT layers and is charged to `NetStats`.

use qb_common::{varint, Cid, Hash256, QbError, QbResult, SimDuration};
use qb_dht::DhtNetwork;
use qb_simnet::SimNet;
use qb_storage::StorageNetwork;

use crate::segment::Segment;

/// DhtKey import lives in qb-common.
use qb_common::DhtKey;

/// Extra bytes charged when a segment pointer rides along a gossip digest.
pub const SEGMENT_REF_WIRE_OVERHEAD: u64 = 8;

/// The well-known DHT key under which the fleet's newest segment pointer
/// is published (version = artifact generation, so replicas keep the
/// newest pointer under last-writer-wins).
pub fn latest_segment_key() -> DhtKey {
    DhtKey(Hash256::digest_parts(&[b"seg:", b"latest"]))
}

/// A compact, serializable pointer to a published segment artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Root cid of the artifact's storage DAG.
    pub root: Cid,
    /// Canonical artifact size in bytes (pre-chunking).
    pub total_len: u64,
    /// Chunks in the DAG.
    pub chunk_count: u64,
    /// Terms in the artifact.
    pub term_count: u64,
    /// Monotonically increasing publish generation (DHT record version).
    pub generation: u64,
}

impl SegmentRef {
    /// Serialize the pointer (raw 32-byte cid + varint metadata).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 4 * 10);
        out.extend_from_slice(self.root.0.as_bytes());
        varint::encode_u64(self.total_len, &mut out);
        varint::encode_u64(self.chunk_count, &mut out);
        varint::encode_u64(self.term_count, &mut out);
        varint::encode_u64(self.generation, &mut out);
        out
    }

    /// Decode a pointer, rejecting trailing bytes.
    pub fn decode(data: &[u8]) -> QbResult<SegmentRef> {
        let raw: [u8; 32] = data
            .get(..32)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(|| QbError::Codec("segment ref too short".into()))?;
        let (total_len, pos) = varint::decode_u64(data, 32)?;
        let (chunk_count, pos) = varint::decode_u64(data, pos)?;
        let (term_count, pos) = varint::decode_u64(data, pos)?;
        let (generation, pos) = varint::decode_u64(data, pos)?;
        if pos != data.len() {
            return Err(QbError::Codec("trailing bytes after segment ref".into()));
        }
        Ok(SegmentRef {
            root: Cid(Hash256::from_bytes(raw)),
            total_len,
            chunk_count,
            term_count,
            generation,
        })
    }

    /// Bytes this pointer occupies when advertised on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.encode().len() as u64 + SEGMENT_REF_WIRE_OVERHEAD
    }
}

/// Reported network cost of one publish or fetch (the authoritative
/// charge is `NetStats`; this mirrors it for per-operation attribution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentIo {
    /// Payload bytes moved.
    pub bytes: u64,
    /// RPC attempts issued.
    pub messages: u64,
    /// End-to-end latency charged to the caller.
    pub latency: SimDuration,
}

/// Chunk the segment into the storage DAG and publish its pointer as a
/// DHT record versioned by `generation`. All bytes are charged to the
/// simulated network by the layers underneath.
pub fn publish_segment(
    net: &mut SimNet,
    dht: &mut DhtNetwork,
    storage: &mut StorageNetwork,
    from: u64,
    segment: &Segment,
    generation: u64,
) -> QbResult<(SegmentRef, SegmentIo)> {
    let bytes = segment.encode();
    let (obj, put_stats) = storage.put_object(net, dht, from, &bytes)?;
    let sref = SegmentRef {
        root: obj.root,
        total_len: obj.total_len,
        chunk_count: obj.chunk_count as u64,
        term_count: segment.len() as u64,
        generation,
    };
    let pointer = sref.encode();
    let pointer_len = pointer.len() as u64;
    let put = dht.put_record(net, from, latest_segment_key(), pointer, generation)?;
    let io = SegmentIo {
        bytes: put_stats.bytes + pointer_len * put.stored_on.len() as u64,
        messages: put_stats.messages + put.messages,
        latency: put_stats.latency + put.latency,
    };
    Ok((sref, io))
}

/// Resolve the latest segment pointer (must be at generation
/// `min_generation` or newer), pull the artifact's blocks with per-block
/// hash verification, and decode it.
pub fn fetch_segment(
    net: &mut SimNet,
    dht: &mut DhtNetwork,
    storage: &mut StorageNetwork,
    from: u64,
    min_generation: u64,
) -> QbResult<(Segment, SegmentRef, SegmentIo)> {
    let got = dht.get_record_fresh(net, from, latest_segment_key(), min_generation)?;
    let sref = SegmentRef::decode(&got.record.value)?;
    // The record lookup falls back to the freshest reachable replica when
    // nothing at `min_version` exists; enforce the floor here so a caller
    // never acts on a pointer older than one it has already seen.
    if sref.generation < min_generation {
        return Err(QbError::DhtLookupFailed(format!(
            "segment pointer at generation {}, need {}",
            sref.generation, min_generation
        )));
    }
    let (data, fetch_stats) = storage.get_object(net, dht, from, sref.root)?;
    if data.len() as u64 != sref.total_len {
        return Err(QbError::Codec(format!(
            "segment length mismatch: pointer says {}, fetched {}",
            sref.total_len,
            data.len()
        )));
    }
    let segment = Segment::decode(&data)?;
    let io = SegmentIo {
        bytes: fetch_stats.bytes + got.record.value.len() as u64,
        messages: fetch_stats.messages + got.messages,
        latency: fetch_stats.latency + got.latency,
    };
    Ok((segment, sref, io))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_dht::DhtConfig;
    use qb_index::{ShardEntry, ShardPosting};
    use qb_simnet::NetConfig;
    use qb_storage::StorageConfig;

    fn shard(term: &str, version: u64, docs: &[u64]) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        for &d in docs {
            s.upsert(ShardPosting {
                doc_id: d,
                term_freq: 1,
                doc_len: 50,
                name: format!("p/{d}"),
                version: 1,
                creator: 2,
            });
        }
        s
    }

    fn stack() -> (SimNet, DhtNetwork, StorageNetwork) {
        let mut net = SimNet::new(16, NetConfig::lan(), 7);
        let dht = DhtNetwork::build(&mut net, DhtConfig::small());
        let storage = StorageNetwork::new(16, StorageConfig::small());
        (net, dht, storage)
    }

    #[test]
    fn publish_fetch_round_trips_and_charges_the_network() {
        let (mut net, mut dht, mut storage) = stack();
        let seg = Segment::from_shards([shard("alpha", 2, &[1, 2, 3]), shard("beta", 1, &[4])]);
        let before = net.stats().clone();
        let (sref, pub_io) = publish_segment(&mut net, &mut dht, &mut storage, 0, &seg, 1).unwrap();
        assert_eq!(sref.generation, 1);
        assert_eq!(sref.term_count, 2);
        assert_eq!(sref.total_len, seg.encoded_len() as u64);
        assert!(pub_io.bytes > 0);

        let (fetched, fref, fetch_io) =
            fetch_segment(&mut net, &mut dht, &mut storage, 5, 1).unwrap();
        assert_eq!(fetched, seg);
        assert_eq!(fetched.encode(), seg.encode());
        assert_eq!(fref, sref);
        assert!(fetch_io.bytes >= seg.encoded_len() as u64);
        // NetStats is the authoritative charge: everything the io reports
        // (and more — headers, lookups) must show up on the network.
        let delta = net.stats().delta_since(&before);
        assert!(delta.bytes >= pub_io.bytes);
        assert!(delta.bytes >= fetch_io.bytes);
        assert!(delta.rpcs > 0);
    }

    #[test]
    fn fetch_requires_fresh_enough_generation() {
        let (mut net, mut dht, mut storage) = stack();
        let seg = Segment::from_shards([shard("alpha", 1, &[1])]);
        publish_segment(&mut net, &mut dht, &mut storage, 0, &seg, 3).unwrap();
        assert!(fetch_segment(&mut net, &mut dht, &mut storage, 4, 4).is_err());
        assert!(fetch_segment(&mut net, &mut dht, &mut storage, 4, 3).is_ok());
    }

    #[test]
    fn segment_ref_codec_round_trips() {
        let sref = SegmentRef {
            root: Cid::for_data(b"x"),
            total_len: 12345,
            chunk_count: 4,
            term_count: 99,
            generation: 7,
        };
        let bytes = sref.encode();
        assert_eq!(SegmentRef::decode(&bytes).unwrap(), sref);
        assert!(SegmentRef::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut t = bytes.clone();
        t.push(1);
        assert!(SegmentRef::decode(&t).is_err());
        assert!(sref.wire_bytes() > 32);
    }
}
