//! Counters for the segment lifecycle (publish, fetch, compaction,
//! import), exported into the unified metrics namespace as `segment.*`.

use qb_trace::{MetricsSnapshot, MetricsSource};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::segment::ImportReport;

/// Cumulative segment-subsystem counters. Byte counts here are the
/// *reported* costs of segment operations; the authoritative charge is
/// `NetStats` on the simulated network, which E16 cross-checks so segment
/// traffic is never free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Artifacts published into the storage DAG + DHT pointer.
    pub segments_published: u64,
    /// Network bytes charged while publishing artifacts.
    pub publish_bytes: u64,
    /// Artifacts fetched (pointer resolve + block transfer + decode).
    pub segments_fetched: u64,
    /// Network bytes charged while fetching artifacts.
    pub fetch_bytes: u64,
    /// RPC attempts issued by fetches.
    pub fetch_messages: u64,
    /// Writer compactions (pending segments merged and published).
    pub compactions: u64,
    /// Terms folded through compaction merges (input side).
    pub compaction_input_terms: u64,
    /// Shards admitted by segment imports.
    pub shards_imported: u64,
    /// Shards a version guard rejected as stale during import.
    pub import_stale: u64,
    /// Shards already held at the same or newer version during import.
    pub import_duplicates: u64,
    /// Shards the admission policy refused during import.
    pub import_refused: u64,
}

impl SegmentStats {
    /// Fold one import's admission outcomes into the counters.
    pub fn record_import(&mut self, report: &ImportReport) {
        self.shards_imported += report.accepted;
        self.import_stale += report.stale;
        self.import_duplicates += report.duplicates;
        self.import_refused += report.refused;
    }
}

impl MetricsSource for SegmentStats {
    fn metrics_into(&self, out: &mut MetricsSnapshot) {
        out.add_counter("segment.segments_published", self.segments_published);
        out.add_counter("segment.publish_bytes", self.publish_bytes);
        out.add_counter("segment.segments_fetched", self.segments_fetched);
        out.add_counter("segment.fetch_bytes", self.fetch_bytes);
        out.add_counter("segment.fetch_messages", self.fetch_messages);
        out.add_counter("segment.compactions", self.compactions);
        out.add_counter(
            "segment.compaction_input_terms",
            self.compaction_input_terms,
        );
        out.add_counter("segment.shards_imported", self.shards_imported);
        out.add_counter("segment.import_stale", self.import_stale);
        out.add_counter("segment.import_duplicates", self.import_duplicates);
        out.add_counter("segment.import_refused", self.import_refused);
    }
}

impl fmt::Display for SegmentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "published={} ({} B) fetched={} ({} B, {} msgs) compactions={} \
             imported={} stale={} dup={} refused={}",
            self.segments_published,
            self.publish_bytes,
            self.segments_fetched,
            self.fetch_bytes,
            self.fetch_messages,
            self.compactions,
            self.shards_imported,
            self.import_stale,
            self.import_duplicates,
            self.import_refused,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_report_folds_into_counters_and_metrics() {
        let mut s = SegmentStats::default();
        s.record_import(&ImportReport {
            accepted: 3,
            stale: 1,
            duplicates: 2,
            refused: 0,
        });
        s.segments_fetched = 1;
        assert_eq!(s.shards_imported, 3);
        assert_eq!(s.import_stale, 1);
        let snap = MetricsSnapshot::collect(&[&s]);
        assert_eq!(snap.counter("segment.shards_imported"), 3);
        assert_eq!(snap.counter("segment.segments_fetched"), 1);
        assert!(!s.to_string().is_empty());
    }
}
