//! Writer-side segment accumulation and compaction policy.

use serde::{Deserialize, Serialize};

/// When enabled, the writer path accumulates every shard it writes into a
/// pending [`crate::Segment`] and compacts (merge + publish) once the
/// pending artifact crosses either threshold — replacing per-term
/// read-modify-write with one bulk artifact that joiners can bootstrap
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentConfig {
    /// Master switch; disabled keeps the writer on the legacy per-term
    /// path only.
    pub enabled: bool,
    /// Compact once the pending segment holds this many distinct terms.
    pub max_pending_terms: usize,
    /// Compact once the pending segment's canonical encoding reaches this
    /// many bytes.
    pub max_pending_bytes: usize,
}

impl Default for SegmentConfig {
    fn default() -> SegmentConfig {
        SegmentConfig {
            enabled: false,
            max_pending_terms: 128,
            max_pending_bytes: 256 * 1024,
        }
    }
}

impl SegmentConfig {
    /// Defaults with the subsystem switched on.
    pub fn enabled() -> SegmentConfig {
        SegmentConfig {
            enabled: true,
            ..SegmentConfig::default()
        }
    }

    /// Reject configurations that could never compact.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.max_pending_terms == 0 {
            return Err("segment.max_pending_terms must be > 0 when enabled".into());
        }
        if self.enabled && self.max_pending_bytes == 0 {
            return Err("segment.max_pending_bytes must be > 0 when enabled".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_disabled() {
        let c = SegmentConfig::default();
        assert!(!c.enabled);
        assert!(c.validate().is_ok());
        assert!(SegmentConfig::enabled().enabled);
    }

    #[test]
    fn zero_thresholds_rejected_when_enabled() {
        let mut c = SegmentConfig::enabled();
        c.max_pending_terms = 0;
        assert!(c.validate().is_err());
        let mut c = SegmentConfig::enabled();
        c.max_pending_bytes = 0;
        assert!(c.validate().is_err());
        // Disabled configs are never rejected.
        let c = SegmentConfig {
            max_pending_terms: 0,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }
}
