//! `qb-segment`: mergeable, content-addressed index artifacts.
//!
//! The gossip overlay warms a joining frontend shard-by-shard and the
//! writer path merges postings term-by-term — both linear in distinct
//! terms, the wrong shape for a fleet serving millions of users. This
//! crate adds the artifact layer real search systems use (Tantivy/Lucene
//! segments, published the way IPFS publishes immutable blobs): an
//! immutable, deterministic **multi-term segment** holding the serialized
//! postings of many terms at once, with the per-term version vector that
//! makes two segments *mergeable* without a coordinator.
//!
//! Three core operations:
//!
//! * [`Segment::export`] — snapshot a frontend's hot shard set into one
//!   byte-stable artifact;
//! * [`Segment::merge`] — k-way, version-vector-dominant merge: for every
//!   term the shard with the higher version wins wholesale (a newer shard
//!   may legitimately have *removed* postings, so unioning would resurrect
//!   ghosts), equal versions fold posting-by-posting through
//!   [`qb_index::ShardEntry::upsert`]. Merge is commutative, associative
//!   and idempotent (proptest-verified), which is what lets the writer
//!   compact many small pending segments into one artifact in any order;
//! * [`Segment::import_into`] — install a segment into a `qb-cache` shard
//!   tier strictly through [`qb_cache::QueryCache::store_remote_shard`]'s
//!   version guard, so a stale artifact can never clobber fresher
//!   knowledge no matter how it was obtained.
//!
//! The wire half ([`publish`]): a segment's canonical bytes are chunked
//! into `qb-storage`'s content-addressed DAG ([`publish_segment`]) and
//! advertised through a versioned DHT pointer record under
//! [`latest_segment_key`]; [`fetch_segment`] resolves the pointer, pulls
//! and verifies the blocks and decodes the artifact. Every byte of both
//! paths moves through [`qb_simnet::SimNet`] RPCs and is charged to its
//! `NetStats` — bootstrap wins are modeled, never free.
//!
//! Encoding is canonical: terms strictly ascending, LEB128 varints from
//! `qb-common`, no floats — the same segment always serializes to the
//! same bytes, so its [`Segment::cid`] is a stable content address and
//! export → publish → fetch → import round-trips byte-identically
//! (proptest-verified).

pub mod config;
pub mod publish;
pub mod segment;
pub mod stats;

pub use config::SegmentConfig;
pub use publish::{fetch_segment, latest_segment_key, publish_segment, SegmentIo, SegmentRef};
pub use segment::{ImportReport, Segment};
pub use stats::SegmentStats;
