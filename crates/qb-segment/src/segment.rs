//! The segment format and its three core operations: export, merge, import.

use qb_cache::{QueryCache, RemoteAdmit};
use qb_common::{varint, Cid, QbError, QbResult, SimInstant};
use qb_index::ShardEntry;
use std::collections::BTreeMap;

/// Leading magic of every serialized segment.
pub const SEGMENT_MAGIC: [u8; 4] = *b"QBSG";

/// Format version written after the magic; bumped on incompatible changes.
pub const SEGMENT_FORMAT_VERSION: u64 = 1;

/// Decode guard against absurd term counts.
const MAX_SEGMENT_TERMS: u64 = 10_000_000;

/// An immutable, deterministic multi-term index artifact: one
/// [`ShardEntry`] per term, each carrying its shard version — together the
/// segment's per-term version vector, the metadata that makes two segments
/// mergeable without coordination.
///
/// Terms are kept sorted (a `BTreeMap`), so the same logical segment
/// always encodes to the same bytes and its [`Segment::cid`] is a stable
/// content address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Segment {
    entries: BTreeMap<String, ShardEntry>,
}

/// Per-term admission outcomes of [`Segment::import_into`] — the segment
/// analogue of the gossip fill counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Shards admitted into the receiving tier.
    pub accepted: u64,
    /// Shards rejected by the version guard (older than the receiver's
    /// observed version for the term).
    pub stale: u64,
    /// Shards the receiver already held at the same or newer version.
    pub duplicates: u64,
    /// Shards the tier's admission policy refused (byte budgets).
    pub refused: u64,
}

impl ImportReport {
    /// Total shards offered.
    pub fn offered(&self) -> u64 {
        self.accepted + self.stale + self.duplicates + self.refused
    }
}

/// Merge two shards of the same term under per-term version-vector
/// dominance: the higher shard version wins wholesale — a newer shard may
/// legitimately have *removed* postings (ghost-posting cleanup), so a
/// posting union would resurrect deleted documents. Equal versions fold
/// posting-by-posting through [`ShardEntry::upsert`], which keeps the
/// posting with the higher per-posting version.
fn merge_shards(a: &ShardEntry, b: &ShardEntry) -> ShardEntry {
    debug_assert_eq!(a.term, b.term);
    match a.version.cmp(&b.version) {
        std::cmp::Ordering::Greater => a.clone(),
        std::cmp::Ordering::Less => b.clone(),
        std::cmp::Ordering::Equal => {
            let mut merged = a.clone();
            for p in &b.postings {
                merged.upsert(p.clone());
            }
            merged
        }
    }
}

impl Segment {
    /// An empty segment.
    pub fn new() -> Segment {
        Segment::default()
    }

    /// Build a segment from shards (later duplicates merge under version
    /// dominance). Version-0 shards (never written) are skipped — they
    /// carry no knowledge and every import guard would reject them.
    pub fn from_shards<I: IntoIterator<Item = ShardEntry>>(shards: I) -> Segment {
        let mut seg = Segment::new();
        for s in shards {
            seg.insert(s);
        }
        seg
    }

    /// Fold one shard into the segment under version dominance. Version-0
    /// shards are ignored.
    pub fn insert(&mut self, shard: ShardEntry) {
        if shard.version == 0 {
            return;
        }
        match self.entries.get_mut(&shard.term) {
            Some(existing) => *existing = merge_shards(existing, &shard),
            None => {
                self.entries.insert(shard.term.clone(), shard);
            }
        }
    }

    /// Number of terms in the segment.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the segment holds no terms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The shard of one term, when present.
    pub fn get(&self, term: &str) -> Option<&ShardEntry> {
        self.entries.get(term)
    }

    /// All shards in ascending term order.
    pub fn shards(&self) -> impl Iterator<Item = &ShardEntry> {
        self.entries.values()
    }

    /// The segment's per-term version vector `(term, shard version)`, in
    /// ascending term order.
    pub fn version_vector(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(t, s)| (t.as_str(), s.version))
    }

    /// K-way version-vector-dominant merge — the basis of writer-side
    /// compaction. Commutative, associative and idempotent, so pending
    /// segments can be folded in any order and re-merging an already
    /// merged artifact changes nothing.
    pub fn merge<I: IntoIterator<Item = Segment>>(segments: I) -> Segment {
        let mut out = Segment::new();
        for seg in segments {
            for shard in seg.entries.into_values() {
                out.insert(shard);
            }
        }
        out
    }

    /// Snapshot the `max_terms` hottest shards of a frontend's cache alive
    /// at `now` into a segment (descending popularity is re-sorted into
    /// canonical term order; expired entries are never exported).
    pub fn export(cache: &QueryCache, max_terms: usize, now: SimInstant) -> Segment {
        let digest = cache.shard_digest(max_terms, now);
        let mut seg = Segment::new();
        for (term, _) in digest {
            if let Some(shard) = cache.peek_shard(&term) {
                seg.insert(shard.clone());
            }
        }
        seg
    }

    /// Install the segment into a cache's shard tier through the existing
    /// remote-admission version guard: `known_version(term)` is the
    /// highest version the receiver has observed for the term, and a
    /// segment shard older than that — or older than the cached copy — is
    /// rejected, so a stale artifact can never clobber fresher knowledge.
    /// Entries inherit the receiver's own adaptive TTL.
    pub fn import_into(
        &self,
        cache: &mut QueryCache,
        known_version: impl Fn(&str) -> u64,
        now: SimInstant,
    ) -> ImportReport {
        let mut report = ImportReport::default();
        for shard in self.entries.values() {
            let ttl = cache.adaptive_shard_ttl(&shard.term);
            match cache.store_remote_shard(shard, known_version(&shard.term), ttl, now) {
                RemoteAdmit::Accepted => report.accepted += 1,
                RemoteAdmit::Stale => report.stale += 1,
                RemoteAdmit::Duplicate => report.duplicates += 1,
                RemoteAdmit::Refused => report.refused += 1,
            }
        }
        report
    }

    /// Exact byte length of [`Segment::encode`]'s output, without
    /// serializing (compaction policy checks and wire-cost accounting).
    pub fn encoded_len(&self) -> usize {
        let mut len = SEGMENT_MAGIC.len()
            + varint::encoded_len(SEGMENT_FORMAT_VERSION)
            + varint::encoded_len(self.entries.len() as u64);
        for shard in self.entries.values() {
            let n = shard.encoded_len();
            len += varint::encoded_len(n as u64) + n;
        }
        len
    }

    /// Canonical serialization: magic, format version, term count, then
    /// every shard length-framed in ascending term order. The same logical
    /// segment always yields the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&SEGMENT_MAGIC);
        varint::encode_u64(SEGMENT_FORMAT_VERSION, &mut out);
        varint::encode_u64(self.entries.len() as u64, &mut out);
        for shard in self.entries.values() {
            let encoded = shard.encode();
            varint::encode_u64(encoded.len() as u64, &mut out);
            out.extend_from_slice(&encoded);
        }
        out
    }

    /// Decode a segment, enforcing canonical form (strictly ascending
    /// terms, no version-0 shards, no trailing bytes) so that
    /// `encode(decode(bytes)) == bytes` for every accepted input.
    pub fn decode(data: &[u8]) -> QbResult<Segment> {
        if data.len() < SEGMENT_MAGIC.len() || data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Err(QbError::Codec("bad segment magic".into()));
        }
        let (format, pos) = varint::decode_u64(data, SEGMENT_MAGIC.len())?;
        if format != SEGMENT_FORMAT_VERSION {
            return Err(QbError::Codec(format!(
                "unsupported segment format {format}"
            )));
        }
        let (count, mut pos) = varint::decode_u64(data, pos)?;
        if count > MAX_SEGMENT_TERMS {
            return Err(QbError::Codec(format!("unreasonable term count {count}")));
        }
        let mut entries = BTreeMap::new();
        let mut last_term: Option<String> = None;
        for _ in 0..count {
            let (len, p) = varint::decode_u64(data, pos)?;
            let end = p
                .checked_add(len as usize)
                .ok_or_else(|| QbError::Codec("segment entry length overflows".into()))?;
            let bytes = data
                .get(p..end)
                .ok_or_else(|| QbError::Codec("truncated segment entry".into()))?;
            pos = end;
            let shard = ShardEntry::decode(bytes)?;
            if shard.version == 0 {
                return Err(QbError::Codec(format!(
                    "segment carries unwritten shard for term {:?}",
                    shard.term
                )));
            }
            if last_term.as_deref() >= Some(shard.term.as_str()) {
                return Err(QbError::Codec(
                    "segment terms must be strictly ascending".into(),
                ));
            }
            last_term = Some(shard.term.clone());
            entries.insert(shard.term.clone(), shard);
        }
        if pos != data.len() {
            return Err(QbError::Codec("trailing bytes after segment".into()));
        }
        Ok(Segment { entries })
    }

    /// The segment's content address: the hash of its canonical bytes.
    pub fn cid(&self) -> Cid {
        Cid::for_data(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_cache::CacheConfig;
    use qb_index::ShardPosting;

    fn posting(doc_id: u64, version: u64) -> ShardPosting {
        ShardPosting {
            doc_id,
            term_freq: 2,
            doc_len: 40,
            name: format!("page/{doc_id}"),
            version,
            creator: 1,
        }
    }

    fn shard(term: &str, version: u64, docs: &[u64]) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        for &d in docs {
            s.upsert(posting(d, 1));
        }
        s
    }

    #[test]
    fn encode_decode_round_trips_byte_identically() {
        let seg = Segment::from_shards([
            shard("alpha", 2, &[1, 5, 9]),
            shard("beta", 1, &[2]),
            shard("zeta", 7, &[]),
        ]);
        let bytes = seg.encode();
        assert_eq!(bytes.len(), seg.encoded_len());
        let back = Segment::decode(&bytes).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.cid(), seg.cid());
        // Insertion order does not leak into the bytes.
        let other = Segment::from_shards([
            shard("zeta", 7, &[]),
            shard("beta", 1, &[2]),
            shard("alpha", 2, &[1, 5, 9]),
        ]);
        assert_eq!(other.encode(), bytes);
    }

    #[test]
    fn decode_rejects_malformed_segments() {
        assert!(Segment::decode(b"nope").is_err());
        let seg = Segment::from_shards([shard("a", 1, &[1]), shard("b", 2, &[2])]);
        let bytes = seg.encode();
        // Trailing garbage.
        let mut t = bytes.clone();
        t.push(0);
        assert!(Segment::decode(&t).is_err());
        // Truncation.
        assert!(Segment::decode(&bytes[..bytes.len() - 1]).is_err());
        // A version-0 shard is not a canonical segment entry.
        let mut with_zero = Segment::new();
        with_zero.entries.insert("a".into(), ShardEntry::empty("a"));
        assert!(Segment::decode(&with_zero.encode()).is_err());
    }

    #[test]
    fn merge_is_version_dominant_not_a_posting_union() {
        // v3 removed doc 5 relative to v2; dominance must not resurrect it.
        let old = shard("t", 2, &[1, 5]);
        let mut new = shard("t", 3, &[1]);
        new.postings[0].version = 2;
        let merged = Segment::merge([
            Segment::from_shards([old.clone()]),
            Segment::from_shards([new.clone()]),
        ]);
        assert_eq!(merged.get("t").unwrap(), &new);
        let flipped = Segment::merge([
            Segment::from_shards([new.clone()]),
            Segment::from_shards([old]),
        ]);
        assert_eq!(flipped.get("t").unwrap(), &new);
        // Equal versions fold posting-wise (upsert keeps both docs).
        let a = shard("t", 4, &[1]);
        let b = shard("t", 4, &[9]);
        let folded = Segment::merge([Segment::from_shards([a]), Segment::from_shards([b])]);
        let docs: Vec<u64> = folded
            .get("t")
            .unwrap()
            .postings
            .iter()
            .map(|p| p.doc_id)
            .collect();
        assert_eq!(docs, vec![1, 9]);
    }

    #[test]
    fn version_zero_shards_are_ignored() {
        let mut seg = Segment::new();
        seg.insert(ShardEntry::empty("ghost"));
        assert!(seg.is_empty());
    }

    #[test]
    fn export_and_import_respect_the_version_guard() {
        let now = SimInstant::ZERO;
        let mut src = QueryCache::new(CacheConfig::enabled());
        src.store_shard(&shard("hot", 3, &[1, 2]), now);
        src.store_shard(&shard("warm", 1, &[3]), now);
        let seg = Segment::export(&src, usize::MAX, now);
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.get("hot").unwrap().version, 3);

        let mut dst = QueryCache::new(CacheConfig::enabled());
        // The receiver already observed a newer version of "warm": the
        // segment copy must be rejected as stale, not installed.
        let known = |term: &str| if term == "warm" { 2 } else { 0 };
        let report = seg.import_into(&mut dst, known, now);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.stale, 1);
        assert_eq!(report.offered(), 2);
        assert_eq!(dst.cached_shard_version("hot"), Some(3));
        assert_eq!(dst.cached_shard_version("warm"), None);
        // Re-importing is a no-op (duplicates).
        let again = seg.import_into(&mut dst, known, now);
        assert_eq!(again.accepted, 0);
        assert_eq!(again.duplicates, 1);
    }
}
