//! The publish registry: QueenBee's no-crawling content registration.

use crate::account::{AccountId, Accounts, TREASURY};
use crate::tx::Event;
use qb_common::{Cid, QbError, QbResult, SimInstant};
use std::collections::HashMap;

/// Registry entry for one page name.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PageRecord {
    /// Stable page name.
    pub name: String,
    /// Root cid of the current version's content in decentralized storage.
    pub cid: Cid,
    /// Monotonically increasing version number (1 = first publish).
    pub version: u64,
    /// The account that owns (first registered) the name.
    pub creator: AccountId,
    /// Out-links of the current version (page names), for the link graph.
    pub out_links: Vec<String>,
    /// When the current version was published.
    pub published_at: SimInstant,
}

/// State of the publish registry contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PublishRegistry {
    /// Honey paid from the treasury for every accepted publish.
    pub publish_reward: u64,
    pages: HashMap<String, PageRecord>,
    /// Total publishes accepted (including updates).
    pub total_publishes: u64,
}

impl PublishRegistry {
    /// Create a registry paying `publish_reward` nectar per accepted publish.
    pub fn new(publish_reward: u64) -> PublishRegistry {
        PublishRegistry {
            publish_reward,
            pages: HashMap::new(),
            total_publishes: 0,
        }
    }

    /// Handle a `PublishPage` call.
    pub fn publish(
        &mut self,
        accounts: &mut Accounts,
        creator: AccountId,
        name: &str,
        cid: Cid,
        out_links: Vec<String>,
        now: SimInstant,
    ) -> QbResult<Vec<Event>> {
        if name.is_empty() {
            return Err(QbError::ContractRevert(
                "page name must not be empty".into(),
            ));
        }
        let version = match self.pages.get(name) {
            Some(existing) => {
                if existing.creator != creator {
                    return Err(QbError::ContractRevert(format!(
                        "page '{name}' is owned by account {}, not {}",
                        existing.creator.0, creator.0
                    )));
                }
                existing.version + 1
            }
            None => 1,
        };
        self.pages.insert(
            name.to_string(),
            PageRecord {
                name: name.to_string(),
                cid,
                version,
                creator,
                out_links: out_links.clone(),
                published_at: now,
            },
        );
        self.total_publishes += 1;
        let mut events = vec![Event::PagePublished {
            creator,
            name: name.to_string(),
            cid,
            version,
            out_links,
        }];
        // Publish reward: best effort — if the treasury is dry the publish
        // still succeeds, it just pays nothing (the paper leaves the exact
        // incentive scheme open; see experiment E5).
        if self.publish_reward > 0 && accounts.balance(TREASURY) >= self.publish_reward {
            accounts.transfer(TREASURY, creator, self.publish_reward)?;
            events.push(Event::PublishRewardPaid {
                creator,
                amount: self.publish_reward,
            });
        }
        Ok(events)
    }

    /// Look up the current record of a page name.
    pub fn get(&self, name: &str) -> Option<&PageRecord> {
        self.pages.get(name)
    }

    /// All registered pages (unordered).
    pub fn pages(&self) -> impl Iterator<Item = &PageRecord> {
        self.pages.values()
    }

    /// Number of distinct registered page names.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_publish_creates_version_one_and_pays_reward() {
        let mut reg = PublishRegistry::new(100);
        let mut accounts = Accounts::with_genesis_supply(1_000);
        let events = reg
            .publish(
                &mut accounts,
                AccountId(5),
                "site/home",
                Cid::for_data(b"v1"),
                vec!["site/about".into()],
                SimInstant::ZERO,
            )
            .unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(accounts.balance(AccountId(5)), 100);
        let rec = reg.get("site/home").unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.creator, AccountId(5));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn update_bumps_version_and_keeps_owner() {
        let mut reg = PublishRegistry::new(0);
        let mut accounts = Accounts::new();
        reg.publish(
            &mut accounts,
            AccountId(1),
            "p",
            Cid::for_data(b"a"),
            vec![],
            SimInstant::ZERO,
        )
        .unwrap();
        reg.publish(
            &mut accounts,
            AccountId(1),
            "p",
            Cid::for_data(b"b"),
            vec![],
            SimInstant::ZERO,
        )
        .unwrap();
        assert_eq!(reg.get("p").unwrap().version, 2);
        assert_eq!(reg.get("p").unwrap().cid, Cid::for_data(b"b"));
        assert_eq!(reg.total_publishes, 2);
    }

    #[test]
    fn other_account_cannot_hijack_a_name() {
        let mut reg = PublishRegistry::new(0);
        let mut accounts = Accounts::new();
        reg.publish(
            &mut accounts,
            AccountId(1),
            "p",
            Cid::for_data(b"a"),
            vec![],
            SimInstant::ZERO,
        )
        .unwrap();
        let err = reg
            .publish(
                &mut accounts,
                AccountId(2),
                "p",
                Cid::for_data(b"x"),
                vec![],
                SimInstant::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, QbError::ContractRevert(_)));
        assert_eq!(reg.get("p").unwrap().creator, AccountId(1));
    }

    #[test]
    fn empty_name_is_rejected() {
        let mut reg = PublishRegistry::new(0);
        let mut accounts = Accounts::new();
        assert!(reg
            .publish(
                &mut accounts,
                AccountId(1),
                "",
                Cid::for_data(b"a"),
                vec![],
                SimInstant::ZERO
            )
            .is_err());
    }

    #[test]
    fn publish_succeeds_without_reward_when_treasury_is_empty() {
        let mut reg = PublishRegistry::new(100);
        let mut accounts = Accounts::new(); // no treasury funds
        let events = reg
            .publish(
                &mut accounts,
                AccountId(3),
                "p",
                Cid::for_data(b"a"),
                vec![],
                SimInstant::ZERO,
            )
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(accounts.balance(AccountId(3)), 0);
    }
}
