//! The three built-in QueenBee contracts.
//!
//! * [`publish::PublishRegistry`] — the no-crawling publish path: page name →
//!   content cid registry plus publish rewards for creators.
//! * [`rewards::RewardPool`] — bounties for worker bees (indexing and ranking
//!   tasks), stake deposits and slashing, popularity rewards for creators.
//! * [`ads::AdMarket`] — advertiser campaigns, pay-per-click charging and the
//!   revenue split between creators, worker bees and the treasury.

pub mod ads;
pub mod publish;
pub mod rewards;
