//! The reward pool: worker-bee bounties, stakes, slashing and popularity
//! rewards — the "fair incentive scheme for all stakeholders" the paper lists
//! as research challenge (I).

use crate::account::{AccountId, Accounts, TREASURY};
use crate::tx::Event;
use qb_common::{QbError, QbResult};
use std::collections::HashMap;

/// Escrow account holding worker-bee stakes.
pub const STAKE_VAULT: AccountId = AccountId(2);

/// State of the reward pool contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RewardPool {
    /// Bounty paid per accepted indexing claim.
    pub index_reward: u64,
    /// Bounty paid per accepted ranking claim.
    pub rank_reward: u64,
    /// Reward paid per popularity payout to a qualifying page's creator.
    pub popularity_reward: u64,
    /// Minimum PageRank (parts per million) for a page to qualify for the
    /// popularity reward — "reward those whose websites are popular".
    pub popularity_threshold_ppm: u64,
    /// Maximum number of bees paid per (page, version) indexing task — the
    /// verification quorum size: redundant computation is what lets the
    /// system detect collusion, so redundancy is paid for.
    pub max_index_claims: usize,
    /// Maximum number of bees paid per (round, block) ranking task.
    pub max_rank_claims: usize,
    index_claims: HashMap<(String, u64), Vec<AccountId>>,
    rank_claims: HashMap<(u64, u64), Vec<AccountId>>,
    stakes: HashMap<AccountId, u64>,
}

impl RewardPool {
    /// Create a reward pool with the given bounty amounts.
    pub fn new(
        index_reward: u64,
        rank_reward: u64,
        popularity_reward: u64,
        popularity_threshold_ppm: u64,
    ) -> RewardPool {
        RewardPool {
            index_reward,
            rank_reward,
            popularity_reward,
            popularity_threshold_ppm,
            max_index_claims: 3,
            max_rank_claims: 3,
            index_claims: HashMap::new(),
            rank_claims: HashMap::new(),
            stakes: HashMap::new(),
        }
    }

    /// Stake currently deposited by a bee.
    pub fn stake_of(&self, bee: AccountId) -> u64 {
        self.stakes.get(&bee).copied().unwrap_or(0)
    }

    /// Handle `ClaimIndexReward`.
    pub fn claim_index(
        &mut self,
        accounts: &mut Accounts,
        bee: AccountId,
        page_name: &str,
        page_version: u64,
    ) -> QbResult<Vec<Event>> {
        let key = (page_name.to_string(), page_version);
        let claimants = self.index_claims.entry(key).or_default();
        if claimants.contains(&bee) {
            return Err(QbError::ContractRevert(format!(
                "bee {} already claimed the indexing bounty for {page_name} v{page_version}",
                bee.0
            )));
        }
        if claimants.len() >= self.max_index_claims {
            return Err(QbError::ContractRevert(format!(
                "indexing bounty for {page_name} v{page_version} is exhausted"
            )));
        }
        if accounts.balance(TREASURY) < self.index_reward {
            return Err(QbError::ContractRevert("treasury exhausted".into()));
        }
        accounts.transfer(TREASURY, bee, self.index_reward)?;
        claimants.push(bee);
        Ok(vec![Event::IndexRewardPaid {
            bee,
            page_name: page_name.to_string(),
            page_version,
            amount: self.index_reward,
        }])
    }

    /// Handle `ClaimRankReward`.
    pub fn claim_rank(
        &mut self,
        accounts: &mut Accounts,
        bee: AccountId,
        round: u64,
        block_id: u64,
    ) -> QbResult<Vec<Event>> {
        let claimants = self.rank_claims.entry((round, block_id)).or_default();
        if claimants.contains(&bee) {
            return Err(QbError::ContractRevert(format!(
                "bee {} already claimed the ranking bounty for round {round} block {block_id}",
                bee.0
            )));
        }
        if claimants.len() >= self.max_rank_claims {
            return Err(QbError::ContractRevert(format!(
                "ranking bounty for round {round} block {block_id} is exhausted"
            )));
        }
        if accounts.balance(TREASURY) < self.rank_reward {
            return Err(QbError::ContractRevert("treasury exhausted".into()));
        }
        accounts.transfer(TREASURY, bee, self.rank_reward)?;
        claimants.push(bee);
        Ok(vec![Event::RankRewardPaid {
            bee,
            round,
            block_id,
            amount: self.rank_reward,
        }])
    }

    /// Handle `DepositStake`.
    pub fn deposit_stake(
        &mut self,
        accounts: &mut Accounts,
        bee: AccountId,
        amount: u64,
    ) -> QbResult<Vec<Event>> {
        if amount == 0 {
            return Err(QbError::ContractRevert("stake must be positive".into()));
        }
        accounts.transfer(bee, STAKE_VAULT, amount)?;
        *self.stakes.entry(bee).or_insert(0) += amount;
        Ok(vec![Event::StakeDeposited { bee, amount }])
    }

    /// Handle `SlashStake`: confiscate up to `amount` of the offender's stake
    /// back to the treasury.
    pub fn slash(
        &mut self,
        accounts: &mut Accounts,
        offender: AccountId,
        amount: u64,
    ) -> QbResult<Vec<Event>> {
        let staked = self.stake_of(offender);
        if staked == 0 {
            return Err(QbError::ContractRevert(format!(
                "account {} has no stake to slash",
                offender.0
            )));
        }
        let slashed = amount.min(staked);
        accounts.transfer(STAKE_VAULT, TREASURY, slashed)?;
        *self.stakes.get_mut(&offender).expect("stake exists") -= slashed;
        Ok(vec![Event::StakeSlashed {
            offender,
            amount: slashed,
        }])
    }

    /// Handle `PayPopularityRewards`: pay creators whose pages exceed the
    /// rank threshold.
    pub fn pay_popularity(
        &mut self,
        accounts: &mut Accounts,
        pages: &[(AccountId, String, u64)],
    ) -> QbResult<Vec<Event>> {
        let mut events = Vec::new();
        for (creator, name, rank_ppm) in pages {
            if *rank_ppm < self.popularity_threshold_ppm {
                continue;
            }
            if accounts.balance(TREASURY) < self.popularity_reward {
                break;
            }
            accounts.transfer(TREASURY, *creator, self.popularity_reward)?;
            events.push(Event::PopularityRewardPaid {
                creator: *creator,
                page_name: name.clone(),
                rank_ppm: *rank_ppm,
                amount: self.popularity_reward,
            });
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RewardPool, Accounts) {
        (
            RewardPool::new(50, 80, 200, 1_000),
            Accounts::with_genesis_supply(10_000),
        )
    }

    #[test]
    fn index_claim_pays_once_per_bee() {
        let (mut pool, mut accounts) = setup();
        pool.claim_index(&mut accounts, AccountId(10), "p", 1)
            .unwrap();
        assert_eq!(accounts.balance(AccountId(10)), 50);
        let err = pool
            .claim_index(&mut accounts, AccountId(10), "p", 1)
            .unwrap_err();
        assert!(matches!(err, QbError::ContractRevert(_)));
        // A different version is a different task.
        pool.claim_index(&mut accounts, AccountId(10), "p", 2)
            .unwrap();
        assert_eq!(accounts.balance(AccountId(10)), 100);
    }

    #[test]
    fn index_claims_capped_at_quorum_size() {
        let (mut pool, mut accounts) = setup();
        pool.max_index_claims = 2;
        pool.claim_index(&mut accounts, AccountId(1), "p", 1)
            .unwrap();
        pool.claim_index(&mut accounts, AccountId(2), "p", 1)
            .unwrap();
        let err = pool
            .claim_index(&mut accounts, AccountId(3), "p", 1)
            .unwrap_err();
        assert!(matches!(err, QbError::ContractRevert(_)));
    }

    #[test]
    fn rank_claim_behaves_like_index_claim() {
        let (mut pool, mut accounts) = setup();
        pool.claim_rank(&mut accounts, AccountId(7), 1, 3).unwrap();
        assert_eq!(accounts.balance(AccountId(7)), 80);
        assert!(pool.claim_rank(&mut accounts, AccountId(7), 1, 3).is_err());
        assert!(pool.claim_rank(&mut accounts, AccountId(7), 2, 3).is_ok());
    }

    #[test]
    fn stake_and_slash_round_trip() {
        let (mut pool, mut accounts) = setup();
        accounts.transfer(TREASURY, AccountId(5), 500).unwrap();
        pool.deposit_stake(&mut accounts, AccountId(5), 300)
            .unwrap();
        assert_eq!(pool.stake_of(AccountId(5)), 300);
        assert_eq!(accounts.balance(AccountId(5)), 200);
        assert_eq!(accounts.balance(STAKE_VAULT), 300);
        // Slashing more than the stake only takes what exists.
        pool.slash(&mut accounts, AccountId(5), 1_000).unwrap();
        assert_eq!(pool.stake_of(AccountId(5)), 0);
        assert_eq!(accounts.balance(STAKE_VAULT), 0);
        assert!(pool.slash(&mut accounts, AccountId(5), 10).is_err());
        assert_eq!(accounts.total_supply(), 10_000);
    }

    #[test]
    fn zero_stake_rejected() {
        let (mut pool, mut accounts) = setup();
        assert!(pool.deposit_stake(&mut accounts, AccountId(5), 0).is_err());
    }

    #[test]
    fn popularity_rewards_respect_threshold() {
        let (mut pool, mut accounts) = setup();
        let pages = vec![
            (AccountId(20), "popular".to_string(), 5_000u64),
            (AccountId(21), "obscure".to_string(), 10u64),
            (AccountId(22), "mid".to_string(), 1_000u64),
        ];
        let events = pool.pay_popularity(&mut accounts, &pages).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(accounts.balance(AccountId(20)), 200);
        assert_eq!(accounts.balance(AccountId(21)), 0);
        assert_eq!(accounts.balance(AccountId(22)), 200);
    }

    #[test]
    fn treasury_exhaustion_stops_payouts() {
        let mut pool = RewardPool::new(50, 80, 200, 0);
        let mut accounts = Accounts::with_genesis_supply(250);
        let pages: Vec<(AccountId, String, u64)> = (0..5)
            .map(|i| (AccountId(30 + i), format!("p{i}"), 999_999))
            .collect();
        let events = pool.pay_popularity(&mut accounts, &pages).unwrap();
        assert_eq!(events.len(), 1, "only one payout fits in the treasury");
        assert!(pool
            .claim_index(&mut accounts, AccountId(40), "p", 1)
            .is_ok());
        assert!(pool
            .claim_index(&mut accounts, AccountId(41), "p", 1)
            .is_err());
    }
}
