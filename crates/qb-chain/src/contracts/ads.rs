//! The advertisement market: campaigns, pay-per-click charging and revenue
//! sharing between content creators, worker bees and the treasury.
//!
//! The paper: "advertisers directly make advertisements through our smart
//! contract and the ad revenue is shared among the content creators and
//! worker bees", and suggests charging advertisers "by the number of clicks
//! on the ad".

use crate::account::{AccountId, Accounts, TREASURY};
use crate::tx::Event;
use qb_common::{QbError, QbResult};
use std::collections::HashMap;

/// Escrow account holding advertiser budgets.
pub const AD_ESCROW: AccountId = AccountId(1);

/// Identifier of an ad campaign.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct AdId(pub u64);

/// One advertiser campaign.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdCampaign {
    /// Campaign id.
    pub id: AdId,
    /// The advertiser account paying for clicks.
    pub advertiser: AccountId,
    /// Keywords the ad targets (lowercased).
    pub keywords: Vec<String>,
    /// Honey charged per click.
    pub bid_per_click: u64,
    /// Remaining escrowed budget.
    pub budget_remaining: u64,
    /// Number of clicks charged so far.
    pub clicks: u64,
}

impl AdCampaign {
    /// Is the campaign still able to pay for a click?
    pub fn active(&self) -> bool {
        self.budget_remaining >= self.bid_per_click && self.bid_per_click > 0
    }
}

/// Revenue split configuration and campaign state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AdMarket {
    /// Percentage of each click paid to the creator of the organic result.
    pub creator_share_pct: u64,
    /// Percentage of each click paid to the worker bee serving the index.
    pub bee_share_pct: u64,
    campaigns: HashMap<AdId, AdCampaign>,
    next_id: u64,
    /// Total click revenue charged so far.
    pub total_revenue: u64,
}

impl AdMarket {
    /// Create a market with the given revenue split (the remainder of each
    /// click goes to the treasury). Shares must sum to at most 100.
    pub fn new(creator_share_pct: u64, bee_share_pct: u64) -> AdMarket {
        assert!(
            creator_share_pct + bee_share_pct <= 100,
            "revenue shares exceed 100%"
        );
        AdMarket {
            creator_share_pct,
            bee_share_pct,
            campaigns: HashMap::new(),
            next_id: 1,
            total_revenue: 0,
        }
    }

    /// Handle `CreateAdCampaign`: escrow the budget and register the campaign.
    pub fn create_campaign(
        &mut self,
        accounts: &mut Accounts,
        advertiser: AccountId,
        keywords: Vec<String>,
        bid_per_click: u64,
        budget: u64,
    ) -> QbResult<(AdId, Vec<Event>)> {
        if bid_per_click == 0 {
            return Err(QbError::ContractRevert(
                "bid per click must be positive".into(),
            ));
        }
        if budget < bid_per_click {
            return Err(QbError::ContractRevert(
                "budget must cover at least one click".into(),
            ));
        }
        if keywords.is_empty() {
            return Err(QbError::ContractRevert("campaign needs keywords".into()));
        }
        accounts.transfer(advertiser, AD_ESCROW, budget)?;
        let id = AdId(self.next_id);
        self.next_id += 1;
        self.campaigns.insert(
            id,
            AdCampaign {
                id,
                advertiser,
                keywords: keywords.iter().map(|k| k.to_lowercase()).collect(),
                bid_per_click,
                budget_remaining: budget,
                clicks: 0,
            },
        );
        Ok((
            id,
            vec![Event::AdCampaignCreated {
                advertiser,
                ad: id,
                bid_per_click,
                budget,
            }],
        ))
    }

    /// Handle `RecordAdClick`: charge the advertiser one bid and split it.
    pub fn record_click(
        &mut self,
        accounts: &mut Accounts,
        ad: AdId,
        page_creator: AccountId,
        serving_bee: AccountId,
    ) -> QbResult<Vec<Event>> {
        let creator_pct = self.creator_share_pct;
        let bee_pct = self.bee_share_pct;
        let campaign = self
            .campaigns
            .get_mut(&ad)
            .ok_or_else(|| QbError::ContractRevert(format!("unknown campaign {}", ad.0)))?;
        if !campaign.active() {
            return Err(QbError::ContractRevert(format!(
                "campaign {} has exhausted its budget",
                ad.0
            )));
        }
        let cost = campaign.bid_per_click;
        let creator_share = cost * creator_pct / 100;
        let bee_share = cost * bee_pct / 100;
        let treasury_share = cost - creator_share - bee_share;
        accounts.transfer(AD_ESCROW, page_creator, creator_share)?;
        accounts.transfer(AD_ESCROW, serving_bee, bee_share)?;
        accounts.transfer(AD_ESCROW, TREASURY, treasury_share)?;
        campaign.budget_remaining -= cost;
        campaign.clicks += 1;
        self.total_revenue += cost;
        Ok(vec![Event::AdClickCharged {
            ad,
            advertiser: campaign.advertiser,
            cost,
            creator_share,
            bee_share,
            treasury_share,
        }])
    }

    /// Campaigns targeting `keyword` that can still pay for a click, ordered
    /// by descending bid (simple first-price selection).
    pub fn match_keyword(&self, keyword: &str) -> Vec<&AdCampaign> {
        let kw = keyword.to_lowercase();
        let mut matches: Vec<&AdCampaign> = self
            .campaigns
            .values()
            .filter(|c| c.active() && c.keywords.contains(&kw))
            .collect();
        matches.sort_by(|a, b| {
            b.bid_per_click
                .cmp(&a.bid_per_click)
                .then(a.id.0.cmp(&b.id.0))
        });
        matches
    }

    /// Look up a campaign.
    pub fn get(&self, id: AdId) -> Option<&AdCampaign> {
        self.campaigns.get(&id)
    }

    /// Number of campaigns ever created.
    pub fn len(&self) -> usize {
        self.campaigns.len()
    }

    /// True when no campaigns exist.
    pub fn is_empty(&self) -> bool {
        self.campaigns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AdMarket, Accounts) {
        let mut accounts = Accounts::with_genesis_supply(100_000);
        accounts.transfer(TREASURY, AccountId(50), 10_000).unwrap(); // advertiser
        (AdMarket::new(60, 30), accounts)
    }

    #[test]
    fn create_campaign_escrows_budget() {
        let (mut market, mut accounts) = setup();
        let (id, events) = market
            .create_campaign(&mut accounts, AccountId(50), vec!["Rust".into()], 10, 1_000)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(accounts.balance(AccountId(50)), 9_000);
        assert_eq!(accounts.balance(AD_ESCROW), 1_000);
        let c = market.get(id).unwrap();
        assert!(c.active());
        assert_eq!(c.keywords, vec!["rust".to_string()]);
    }

    #[test]
    fn invalid_campaigns_are_rejected() {
        let (mut market, mut accounts) = setup();
        assert!(market
            .create_campaign(&mut accounts, AccountId(50), vec!["x".into()], 0, 100)
            .is_err());
        assert!(market
            .create_campaign(&mut accounts, AccountId(50), vec!["x".into()], 10, 5)
            .is_err());
        assert!(market
            .create_campaign(&mut accounts, AccountId(50), vec![], 10, 100)
            .is_err());
        // Budget larger than the advertiser's balance.
        assert!(market
            .create_campaign(
                &mut accounts,
                AccountId(50),
                vec!["x".into()],
                10,
                1_000_000
            )
            .is_err());
    }

    #[test]
    fn click_splits_revenue_and_decrements_budget() {
        let (mut market, mut accounts) = setup();
        let (id, _) = market
            .create_campaign(
                &mut accounts,
                AccountId(50),
                vec!["search".into()],
                100,
                300,
            )
            .unwrap();
        let creator = AccountId(60);
        let bee = AccountId(70);
        let treasury_before = accounts.balance(TREASURY);
        let events = market
            .record_click(&mut accounts, id, creator, bee)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(accounts.balance(creator), 60);
        assert_eq!(accounts.balance(bee), 30);
        assert_eq!(accounts.balance(TREASURY), treasury_before + 10);
        assert_eq!(market.get(id).unwrap().budget_remaining, 200);
        assert_eq!(market.total_revenue, 100);
        assert_eq!(accounts.total_supply(), 100_000);
    }

    #[test]
    fn budget_exhaustion_deactivates_campaign() {
        let (mut market, mut accounts) = setup();
        let (id, _) = market
            .create_campaign(&mut accounts, AccountId(50), vec!["kw".into()], 100, 200)
            .unwrap();
        market
            .record_click(&mut accounts, id, AccountId(60), AccountId(70))
            .unwrap();
        market
            .record_click(&mut accounts, id, AccountId(60), AccountId(70))
            .unwrap();
        let err = market
            .record_click(&mut accounts, id, AccountId(60), AccountId(70))
            .unwrap_err();
        assert!(matches!(err, QbError::ContractRevert(_)));
        assert!(!market.get(id).unwrap().active());
        assert!(market.match_keyword("kw").is_empty());
    }

    #[test]
    fn keyword_matching_orders_by_bid() {
        let (mut market, mut accounts) = setup();
        let (low, _) = market
            .create_campaign(&mut accounts, AccountId(50), vec!["dweb".into()], 10, 100)
            .unwrap();
        let (high, _) = market
            .create_campaign(
                &mut accounts,
                AccountId(50),
                vec!["DWeb".into(), "p2p".into()],
                50,
                200,
            )
            .unwrap();
        let matches = market.match_keyword("dweb");
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].id, high);
        assert_eq!(matches[1].id, low);
        assert_eq!(market.match_keyword("p2p").len(), 1);
        assert!(market.match_keyword("unrelated").is_empty());
    }

    #[test]
    fn unknown_campaign_click_reverts() {
        let (mut market, mut accounts) = setup();
        assert!(market
            .record_click(&mut accounts, AdId(999), AccountId(1), AccountId(2))
            .is_err());
    }
}
