//! Blocks and block headers.

use crate::account::AccountId;
use crate::tx::Transaction;
use qb_common::{Hash256, SimInstant};

/// Header of a sealed block.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockHeader {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the parent block header.
    pub parent: Hash256,
    /// The validator that sealed the block (round-robin proof of authority).
    pub sealer: AccountId,
    /// Simulation time at which the block was sealed.
    pub sealed_at: SimInstant,
    /// Number of transactions in the block.
    pub tx_count: u32,
    /// Merkle-style digest over the transaction list (a flat hash is enough
    /// for the simulation: it commits the sealer to the exact tx sequence).
    pub tx_digest: Hash256,
}

impl BlockHeader {
    /// Hash of this header (identifies the block).
    pub fn hash(&self) -> Hash256 {
        let mut bytes = Vec::with_capacity(96);
        bytes.extend_from_slice(&self.height.to_be_bytes());
        bytes.extend_from_slice(self.parent.as_bytes());
        bytes.extend_from_slice(&self.sealer.0.to_be_bytes());
        bytes.extend_from_slice(&self.sealed_at.as_micros().to_be_bytes());
        bytes.extend_from_slice(&self.tx_count.to_be_bytes());
        bytes.extend_from_slice(self.tx_digest.as_bytes());
        Hash256::digest(&bytes)
    }
}

/// A sealed block: header plus the transactions it contains.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Block {
    /// The block header.
    pub header: BlockHeader,
    /// Transactions in sealing order.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Digest committing to a transaction list.
    pub fn digest_transactions(txs: &[Transaction]) -> Hash256 {
        let mut bytes = Vec::new();
        for tx in txs {
            bytes.extend_from_slice(&tx.from.0.to_be_bytes());
            bytes.extend_from_slice(&tx.nonce.to_be_bytes());
            // The debug representation is a stable, deterministic encoding of
            // the call for hashing purposes in the simulation.
            bytes.extend_from_slice(format!("{:?}", tx.call).as_bytes());
        }
        Hash256::digest(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Call;

    fn tx(n: u64) -> Transaction {
        Transaction::new(
            AccountId(1),
            n,
            Call::Transfer {
                to: AccountId(2),
                amount: n,
            },
        )
    }

    #[test]
    fn header_hash_changes_with_contents() {
        let base = BlockHeader {
            height: 1,
            parent: Hash256::ZERO,
            sealer: AccountId(1),
            sealed_at: SimInstant::ZERO,
            tx_count: 0,
            tx_digest: Hash256::ZERO,
        };
        let mut other = base.clone();
        other.height = 2;
        assert_ne!(base.hash(), other.hash());
        let mut other = base.clone();
        other.sealer = AccountId(9);
        assert_ne!(base.hash(), other.hash());
        assert_eq!(base.hash(), base.clone().hash());
    }

    #[test]
    fn tx_digest_commits_to_order_and_content() {
        let a = Block::digest_transactions(&[tx(1), tx(2)]);
        let b = Block::digest_transactions(&[tx(2), tx(1)]);
        let c = Block::digest_transactions(&[tx(1), tx(2)]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, Block::digest_transactions(&[tx(1)]));
    }
}
