//! Transactions, contract calls, events and receipts.

use crate::account::AccountId;
use crate::contracts::ads::AdId;
use qb_common::Cid;

/// A call into one of the built-in QueenBee contracts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Call {
    /// Plain honey transfer.
    Transfer { to: AccountId, amount: u64 },
    /// Content creator publishes (creates or updates) a page: the page body
    /// already lives in decentralized storage under `cid`; this call records
    /// the name → cid mapping, the link structure and pays the publish reward.
    /// This is the paper's "no-crawling" path: the index learns about new
    /// content from this event, not from a crawler.
    PublishPage {
        /// Stable page name (the DWeb analogue of a URL).
        name: String,
        /// Root cid of the page content in decentralized storage.
        cid: Cid,
        /// Names of pages this page links to (for the link graph / PageRank).
        out_links: Vec<String>,
    },
    /// A worker bee claims the indexing bounty for a page version it has
    /// tokenized and merged into the distributed inverted index.
    ClaimIndexReward {
        /// Page that was indexed.
        page_name: String,
        /// Version of the page that was indexed.
        page_version: u64,
    },
    /// A worker bee claims the ranking bounty for a PageRank block it
    /// computed in the given round.
    ClaimRankReward {
        /// PageRank round number.
        round: u64,
        /// Graph block the bee was responsible for.
        block_id: u64,
    },
    /// A worker bee deposits stake that can be slashed if it is caught
    /// submitting manipulated index or rank data.
    DepositStake { amount: u64 },
    /// Slash a misbehaving worker bee's stake (invoked after a verification
    /// quorum catches manipulated data). The slashed amount returns to the
    /// treasury.
    SlashStake { offender: AccountId, amount: u64 },
    /// An advertiser opens a pay-per-click campaign.
    CreateAdCampaign {
        /// Keywords the ad targets.
        keywords: Vec<String>,
        /// Honey paid per click.
        bid_per_click: u64,
        /// Total budget escrowed from the advertiser.
        budget: u64,
    },
    /// A user clicked an ad next to a search result: charge the advertiser
    /// and split the revenue between the creator of the page the result came
    /// from, the worker bee that served/maintained the index, and the treasury.
    RecordAdClick {
        /// The campaign that was clicked.
        ad: AdId,
        /// Creator of the organic result the ad was shown next to.
        page_creator: AccountId,
        /// Worker bee credited for serving the index shard.
        serving_bee: AccountId,
    },
    /// Pay the popularity reward to creators whose pages' rank exceeds the
    /// configured threshold (rank expressed in parts-per-million).
    PayPopularityRewards {
        /// `(creator, page name, rank in ppm)` triples.
        pages: Vec<(AccountId, String, u64)>,
    },
}

/// A signed transaction (signatures are modelled, not computed: the sender is
/// authenticated by construction in the simulation).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Transaction {
    /// Sending account.
    pub from: AccountId,
    /// Sender nonce (must equal the account's next expected nonce).
    pub nonce: u64,
    /// The contract call.
    pub call: Call,
}

impl Transaction {
    /// Convenience constructor.
    pub fn new(from: AccountId, nonce: u64, call: Call) -> Transaction {
        Transaction { from, nonce, call }
    }
}

/// Outcome of applying a transaction.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TxStatus {
    /// Applied successfully.
    Ok,
    /// Rejected before execution (bad nonce).
    InvalidNonce { expected: u64, got: u64 },
    /// The contract reverted; state is unchanged apart from the nonce.
    Reverted(String),
}

/// Receipt of an applied transaction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Receipt {
    /// Height of the block the transaction was sealed into.
    pub block_height: u64,
    /// Position within the block.
    pub tx_index: usize,
    /// Sender.
    pub from: AccountId,
    /// Execution status.
    pub status: TxStatus,
    /// Events emitted by the call.
    pub events: Vec<Event>,
}

/// Typed events appended to the chain's event log. Worker bees subscribe to
/// these instead of crawling.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// Honey moved between accounts.
    Transferred {
        from: AccountId,
        to: AccountId,
        amount: u64,
    },
    /// A page was published or updated.
    PagePublished {
        creator: AccountId,
        name: String,
        cid: Cid,
        version: u64,
        out_links: Vec<String>,
    },
    /// The publish reward was paid to a creator.
    PublishRewardPaid { creator: AccountId, amount: u64 },
    /// An indexing bounty was paid to a worker bee.
    IndexRewardPaid {
        bee: AccountId,
        page_name: String,
        page_version: u64,
        amount: u64,
    },
    /// A ranking bounty was paid to a worker bee.
    RankRewardPaid {
        bee: AccountId,
        round: u64,
        block_id: u64,
        amount: u64,
    },
    /// A worker bee deposited stake.
    StakeDeposited { bee: AccountId, amount: u64 },
    /// A worker bee was slashed.
    StakeSlashed { offender: AccountId, amount: u64 },
    /// An advertiser opened a campaign.
    AdCampaignCreated {
        advertiser: AccountId,
        ad: AdId,
        bid_per_click: u64,
        budget: u64,
    },
    /// An ad click was charged and the revenue split.
    AdClickCharged {
        ad: AdId,
        advertiser: AccountId,
        cost: u64,
        creator_share: u64,
        bee_share: u64,
        treasury_share: u64,
    },
    /// A popularity reward was paid to a creator for a highly ranked page.
    PopularityRewardPaid {
        creator: AccountId,
        page_name: String,
        rank_ppm: u64,
        amount: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_construction() {
        let tx = Transaction::new(
            AccountId(7),
            3,
            Call::Transfer {
                to: AccountId(9),
                amount: 50,
            },
        );
        assert_eq!(tx.from, AccountId(7));
        assert_eq!(tx.nonce, 3);
        assert!(matches!(tx.call, Call::Transfer { amount: 50, .. }));
    }

    #[test]
    fn call_debug_output_names_the_page() {
        let call = Call::PublishPage {
            name: "dweb/home".into(),
            cid: Cid::for_data(b"body"),
            out_links: vec!["dweb/about".into()],
        };
        assert!(format!("{call:?}").contains("dweb/home"));
    }
}
