//! Blockchain substrate: the honey token and QueenBee's smart contracts.
//!
//! The paper puts QueenBee's "core business operations" — publishing,
//! indexing/ranking rewards and the advertisement market — on a
//! cryptocurrency blockchain (it names Ethereum). This crate provides that
//! substrate as a deterministic, laptop-scale ledger:
//!
//! * accounts hold **honey** (the incentive token, smallest unit "nectar"),
//! * transactions carry calls into three built-in contracts:
//!   [`contracts::publish::PublishRegistry`] (the no-crawling publish path),
//!   [`contracts::ads::AdMarket`] (advertiser campaigns, pay-per-click) and
//!   [`contracts::rewards::RewardPool`] (bounties for worker bees, popularity
//!   rewards for creators, stake slashing for cheaters),
//! * blocks are sealed round-robin by a configured validator set
//!   (proof-of-authority) — consensus details are orthogonal to every claim
//!   the paper makes, so we use the simplest deterministic scheme,
//! * every applied transaction appends typed [`Event`]s to an event log,
//!   which is how worker bees observe publish events without crawling.
//!
//! Total honey is conserved: it is minted only in the genesis allocation and
//! only moves between accounts afterwards (a property test enforces this).

pub mod account;
pub mod block;
pub mod chain;
pub mod contracts;
pub mod tx;

pub use account::{AccountId, Accounts, TREASURY};
pub use block::{Block, BlockHeader};
pub use chain::{Blockchain, ChainConfig, ChainStats};
pub use contracts::ads::{AdCampaign, AdId, AdMarket};
pub use contracts::publish::{PageRecord, PublishRegistry};
pub use contracts::rewards::RewardPool;
pub use tx::{Call, Event, Receipt, Transaction, TxStatus};
