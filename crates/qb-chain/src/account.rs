//! Accounts and honey balances.

use qb_common::{QbError, QbResult};
use std::collections::HashMap;

/// Account identifier. The simulation maps content creators, worker bees and
/// advertisers to distinct account ids.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct AccountId(pub u64);

/// The treasury account: holds the genesis honey supply from which all
/// protocol rewards are paid.
pub const TREASURY: AccountId = AccountId(0);

/// One account's state.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Account {
    /// Balance in nectar (the smallest honey unit).
    pub balance: u64,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

/// The account table.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Accounts {
    accounts: HashMap<AccountId, Account>,
}

impl Accounts {
    /// Create an empty table.
    pub fn new() -> Accounts {
        Accounts::default()
    }

    /// Create a table with the full `supply` minted to the treasury.
    pub fn with_genesis_supply(supply: u64) -> Accounts {
        let mut a = Accounts::new();
        a.accounts.insert(
            TREASURY,
            Account {
                balance: supply,
                nonce: 0,
            },
        );
        a
    }

    /// Balance of an account (0 when unknown).
    pub fn balance(&self, id: AccountId) -> u64 {
        self.accounts.get(&id).map(|a| a.balance).unwrap_or(0)
    }

    /// Next expected nonce of an account (0 when unknown).
    pub fn nonce(&self, id: AccountId) -> u64 {
        self.accounts.get(&id).map(|a| a.nonce).unwrap_or(0)
    }

    /// Bump the nonce after a transaction from `id` was processed.
    pub fn bump_nonce(&mut self, id: AccountId) {
        self.accounts.entry(id).or_default().nonce += 1;
    }

    /// Move `amount` nectar from `from` to `to`.
    pub fn transfer(&mut self, from: AccountId, to: AccountId, amount: u64) -> QbResult<()> {
        if amount == 0 {
            return Ok(());
        }
        let from_balance = self.balance(from);
        if from_balance < amount {
            return Err(QbError::TxRejected(format!(
                "insufficient honey: account {} has {} nectar, needs {}",
                from.0, from_balance, amount
            )));
        }
        self.accounts.entry(from).or_default().balance -= amount;
        self.accounts.entry(to).or_default().balance += amount;
        Ok(())
    }

    /// Total honey across all accounts (must stay equal to the genesis supply).
    pub fn total_supply(&self) -> u64 {
        self.accounts.values().map(|a| a.balance).sum()
    }

    /// Number of accounts that ever held a balance or sent a transaction.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Iterate over `(account, balance)` pairs (used by the fairness
    /// experiment to compute Gini coefficients).
    pub fn balances(&self) -> impl Iterator<Item = (AccountId, u64)> + '_ {
        self.accounts.iter().map(|(id, a)| (*id, a.balance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn genesis_supply_goes_to_treasury() {
        let a = Accounts::with_genesis_supply(1_000_000);
        assert_eq!(a.balance(TREASURY), 1_000_000);
        assert_eq!(a.total_supply(), 1_000_000);
        assert_eq!(a.balance(AccountId(5)), 0);
    }

    #[test]
    fn transfer_moves_funds() {
        let mut a = Accounts::with_genesis_supply(100);
        a.transfer(TREASURY, AccountId(1), 30).unwrap();
        assert_eq!(a.balance(TREASURY), 70);
        assert_eq!(a.balance(AccountId(1)), 30);
        assert_eq!(a.total_supply(), 100);
    }

    #[test]
    fn overdraft_is_rejected() {
        let mut a = Accounts::with_genesis_supply(10);
        let err = a.transfer(AccountId(3), AccountId(4), 1).unwrap_err();
        assert!(matches!(err, QbError::TxRejected(_)));
        let err = a.transfer(TREASURY, AccountId(4), 11).unwrap_err();
        assert!(matches!(err, QbError::TxRejected(_)));
        assert_eq!(a.total_supply(), 10);
    }

    #[test]
    fn zero_transfer_is_a_noop() {
        let mut a = Accounts::new();
        a.transfer(AccountId(1), AccountId(2), 0).unwrap();
        assert_eq!(a.total_supply(), 0);
    }

    #[test]
    fn nonce_tracking() {
        let mut a = Accounts::new();
        assert_eq!(a.nonce(AccountId(9)), 0);
        a.bump_nonce(AccountId(9));
        a.bump_nonce(AccountId(9));
        assert_eq!(a.nonce(AccountId(9)), 2);
    }

    proptest! {
        #[test]
        fn supply_is_conserved_by_random_transfers(
            transfers in proptest::collection::vec((0u64..16, 0u64..16, 0u64..5000), 0..200)
        ) {
            let supply = 1_000_000u64;
            let mut a = Accounts::with_genesis_supply(supply);
            // Seed a few accounts.
            for i in 1..16 {
                a.transfer(TREASURY, AccountId(i), 10_000).unwrap();
            }
            for (from, to, amount) in transfers {
                let _ = a.transfer(AccountId(from), AccountId(to), amount);
            }
            prop_assert_eq!(a.total_supply(), supply);
        }
    }
}
