//! The ledger: mempool, proof-of-authority sealing, state and the event log.

use crate::account::{AccountId, Accounts, TREASURY};
use crate::block::{Block, BlockHeader};
use crate::contracts::ads::AdMarket;
use crate::contracts::publish::PublishRegistry;
use crate::contracts::rewards::RewardPool;
use crate::tx::{Call, Event, Receipt, Transaction, TxStatus};
use qb_common::{Hash256, QbError, QbResult, SimInstant};
use std::collections::VecDeque;

/// Chain-level configuration: token supply, reward amounts, revenue split and
/// the validator set.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChainConfig {
    /// Honey minted to the treasury at genesis (nectar).
    pub genesis_supply: u64,
    /// Reward per accepted publish.
    pub publish_reward: u64,
    /// Bounty per accepted indexing claim.
    pub index_reward: u64,
    /// Bounty per accepted ranking claim.
    pub rank_reward: u64,
    /// Reward per popularity payout.
    pub popularity_reward: u64,
    /// PageRank threshold (parts per million) for popularity rewards.
    pub popularity_threshold_ppm: u64,
    /// Creator share of each ad click (percent).
    pub creator_share_pct: u64,
    /// Worker-bee share of each ad click (percent).
    pub bee_share_pct: u64,
    /// Round-robin validator set (proof of authority).
    pub validators: Vec<AccountId>,
    /// Maximum transactions sealed per block.
    pub max_txs_per_block: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            genesis_supply: 1_000_000_000,
            publish_reward: 100,
            index_reward: 50,
            rank_reward: 50,
            popularity_reward: 500,
            popularity_threshold_ppm: 2_000,
            creator_share_pct: 60,
            bee_share_pct: 30,
            validators: vec![AccountId(900), AccountId(901), AccountId(902)],
            max_txs_per_block: 10_000,
        }
    }
}

/// Aggregate chain statistics used by the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChainStats {
    /// Current height (number of sealed blocks).
    pub height: u64,
    /// Transactions applied successfully.
    pub ok_txs: u64,
    /// Transactions that reverted or were rejected.
    pub failed_txs: u64,
    /// Total honey across all accounts.
    pub total_supply: u64,
    /// Events emitted so far.
    pub events: u64,
}

/// The QueenBee blockchain.
#[derive(Debug, Clone)]
pub struct Blockchain {
    config: ChainConfig,
    accounts: Accounts,
    publish: PublishRegistry,
    ads: AdMarket,
    rewards: RewardPool,
    blocks: Vec<Block>,
    receipts: Vec<Receipt>,
    mempool: VecDeque<Transaction>,
    events: Vec<(u64, Event)>,
    ok_txs: u64,
    failed_txs: u64,
}

impl Blockchain {
    /// Create a chain with the genesis allocation and empty contracts.
    pub fn new(config: ChainConfig) -> Blockchain {
        let accounts = Accounts::with_genesis_supply(config.genesis_supply);
        let publish = PublishRegistry::new(config.publish_reward);
        let ads = AdMarket::new(config.creator_share_pct, config.bee_share_pct);
        let rewards = RewardPool::new(
            config.index_reward,
            config.rank_reward,
            config.popularity_reward,
            config.popularity_threshold_ppm,
        );
        Blockchain {
            config,
            accounts,
            publish,
            ads,
            rewards,
            blocks: Vec::new(),
            receipts: Vec::new(),
            mempool: VecDeque::new(),
            events: Vec::new(),
            ok_txs: 0,
            failed_txs: 0,
        }
    }

    /// Chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Honey balance of an account.
    pub fn balance(&self, id: AccountId) -> u64 {
        self.accounts.balance(id)
    }

    /// Fund an account from the treasury outside of a transaction. Used to
    /// set up simulations (give advertisers budgets, bees starting capital);
    /// conservation still holds because it is a transfer, not a mint.
    pub fn fund_from_treasury(&mut self, to: AccountId, amount: u64) -> QbResult<()> {
        self.accounts.transfer(TREASURY, to, amount)
    }

    /// The account table (read-only).
    pub fn accounts(&self) -> &Accounts {
        &self.accounts
    }

    /// The publish registry (read-only).
    pub fn publish_registry(&self) -> &PublishRegistry {
        &self.publish
    }

    /// The ad market (read-only).
    pub fn ad_market(&self) -> &AdMarket {
        &self.ads
    }

    /// The reward pool (read-only).
    pub fn reward_pool(&self) -> &RewardPool {
        &self.rewards
    }

    /// Mutable access to the reward pool configuration (quorum sizes).
    pub fn reward_pool_mut(&mut self) -> &mut RewardPool {
        &mut self.rewards
    }

    /// Next nonce to use for an account, accounting for transactions already
    /// queued in the mempool.
    pub fn next_nonce(&self, from: AccountId) -> u64 {
        let pending = self.mempool.iter().filter(|t| t.from == from).count() as u64;
        self.accounts.nonce(from) + pending
    }

    /// Build a transaction with the correct next nonce and queue it.
    pub fn submit_call(&mut self, from: AccountId, call: Call) -> Transaction {
        let tx = Transaction::new(from, self.next_nonce(from), call);
        self.mempool.push_back(tx.clone());
        tx
    }

    /// Queue an already-built transaction.
    pub fn submit(&mut self, tx: Transaction) {
        self.mempool.push_back(tx);
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Seal the next block, applying queued transactions. Returns the header
    /// of the sealed block (empty blocks are allowed).
    pub fn seal_block(&mut self, now: SimInstant) -> BlockHeader {
        let take = self.mempool.len().min(self.config.max_txs_per_block);
        let txs: Vec<Transaction> = self.mempool.drain(..take).collect();
        let height = self.height();
        let parent = self
            .blocks
            .last()
            .map(|b| b.header.hash())
            .unwrap_or(Hash256::ZERO);
        let sealer = if self.config.validators.is_empty() {
            TREASURY
        } else {
            self.config.validators[(height as usize) % self.config.validators.len()]
        };

        for (i, tx) in txs.iter().enumerate() {
            let expected = self.accounts.nonce(tx.from);
            let (status, events) = if tx.nonce != expected {
                (
                    TxStatus::InvalidNonce {
                        expected,
                        got: tx.nonce,
                    },
                    Vec::new(),
                )
            } else {
                self.accounts.bump_nonce(tx.from);
                match self.apply_call(tx.from, &tx.call, now) {
                    Ok(events) => (TxStatus::Ok, events),
                    Err(e) => (TxStatus::Reverted(e.to_string()), Vec::new()),
                }
            };
            match &status {
                TxStatus::Ok => self.ok_txs += 1,
                _ => self.failed_txs += 1,
            }
            for ev in &events {
                self.events.push((height, ev.clone()));
            }
            self.receipts.push(Receipt {
                block_height: height,
                tx_index: i,
                from: tx.from,
                status,
                events,
            });
        }

        let header = BlockHeader {
            height,
            parent,
            sealer,
            sealed_at: now,
            tx_count: txs.len() as u32,
            tx_digest: Block::digest_transactions(&txs),
        };
        self.blocks.push(Block {
            header: header.clone(),
            transactions: txs,
        });
        header
    }

    fn apply_call(
        &mut self,
        from: AccountId,
        call: &Call,
        now: SimInstant,
    ) -> QbResult<Vec<Event>> {
        match call {
            Call::Transfer { to, amount } => {
                self.accounts.transfer(from, *to, *amount)?;
                Ok(vec![Event::Transferred {
                    from,
                    to: *to,
                    amount: *amount,
                }])
            }
            Call::PublishPage {
                name,
                cid,
                out_links,
            } => self
                .publish
                .publish(&mut self.accounts, from, name, *cid, out_links.clone(), now),
            Call::ClaimIndexReward {
                page_name,
                page_version,
            } => self
                .rewards
                .claim_index(&mut self.accounts, from, page_name, *page_version),
            Call::ClaimRankReward { round, block_id } => {
                self.rewards
                    .claim_rank(&mut self.accounts, from, *round, *block_id)
            }
            Call::DepositStake { amount } => {
                self.rewards
                    .deposit_stake(&mut self.accounts, from, *amount)
            }
            Call::SlashStake { offender, amount } => {
                self.rewards.slash(&mut self.accounts, *offender, *amount)
            }
            Call::CreateAdCampaign {
                keywords,
                bid_per_click,
                budget,
            } => {
                let (_id, events) = self.ads.create_campaign(
                    &mut self.accounts,
                    from,
                    keywords.clone(),
                    *bid_per_click,
                    *budget,
                )?;
                Ok(events)
            }
            Call::RecordAdClick {
                ad,
                page_creator,
                serving_bee,
            } => self
                .ads
                .record_click(&mut self.accounts, *ad, *page_creator, *serving_bee),
            Call::PayPopularityRewards { pages } => {
                self.rewards.pay_popularity(&mut self.accounts, pages)
            }
        }
    }

    /// Receipts of all applied transactions, in order.
    pub fn receipts(&self) -> &[Receipt] {
        &self.receipts
    }

    /// The full event log as `(block height, event)` pairs. Consumers keep a
    /// cursor (index into this log) and read everything after it — this is
    /// how worker bees learn about new publishes without crawling.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Events appended at or after log index `cursor`.
    pub fn events_since(&self, cursor: usize) -> &[(u64, Event)] {
        &self.events[cursor.min(self.events.len())..]
    }

    /// All sealed blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Chain statistics.
    pub fn stats(&self) -> ChainStats {
        ChainStats {
            height: self.height(),
            ok_txs: self.ok_txs,
            failed_txs: self.failed_txs,
            total_supply: self.accounts.total_supply(),
            events: self.events.len() as u64,
        }
    }

    /// Verify header linkage of the whole chain (used by tests and the chain
    /// micro-benchmark to confirm integrity after long runs).
    pub fn verify_integrity(&self) -> QbResult<()> {
        let mut expected_parent = Hash256::ZERO;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header.height != i as u64 {
                return Err(QbError::Config(format!(
                    "block {i} has height {}",
                    block.header.height
                )));
            }
            if block.header.parent != expected_parent {
                return Err(QbError::Config(format!("block {i} parent hash mismatch")));
            }
            if block.header.tx_digest != Block::digest_transactions(&block.transactions) {
                return Err(QbError::Config(format!("block {i} tx digest mismatch")));
            }
            expected_parent = block.header.hash();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qb_common::Cid;

    fn chain() -> Blockchain {
        Blockchain::new(ChainConfig::default())
    }

    #[test]
    fn publish_via_transaction_pays_reward_and_emits_event() {
        let mut c = chain();
        let creator = AccountId(100);
        c.submit_call(
            creator,
            Call::PublishPage {
                name: "dweb/home".into(),
                cid: Cid::for_data(b"v1"),
                out_links: vec!["dweb/docs".into()],
            },
        );
        c.seal_block(SimInstant::ZERO);
        assert_eq!(c.height(), 1);
        assert_eq!(c.balance(creator), c.config().publish_reward);
        assert_eq!(c.publish_registry().get("dweb/home").unwrap().version, 1);
        assert!(c
            .events()
            .iter()
            .any(|(_, e)| matches!(e, Event::PagePublished { name, .. } if name == "dweb/home")));
        assert_eq!(c.stats().ok_txs, 1);
    }

    #[test]
    fn invalid_nonce_is_rejected_without_state_change() {
        let mut c = chain();
        c.submit(Transaction::new(
            AccountId(5),
            7,
            Call::Transfer {
                to: AccountId(6),
                amount: 1,
            },
        ));
        c.seal_block(SimInstant::ZERO);
        assert_eq!(c.stats().failed_txs, 1);
        assert!(matches!(
            c.receipts()[0].status,
            TxStatus::InvalidNonce {
                expected: 0,
                got: 7
            }
        ));
    }

    #[test]
    fn reverted_transactions_do_not_leak_honey() {
        let mut c = chain();
        let supply = c.accounts().total_supply();
        // Transfer from an empty account reverts.
        c.submit_call(
            AccountId(7),
            Call::Transfer {
                to: AccountId(8),
                amount: 999,
            },
        );
        // Slash with no stake reverts.
        c.submit_call(
            AccountId(7),
            Call::SlashStake {
                offender: AccountId(9),
                amount: 10,
            },
        );
        c.seal_block(SimInstant::ZERO);
        assert_eq!(c.stats().failed_txs, 2);
        assert_eq!(c.accounts().total_supply(), supply);
    }

    #[test]
    fn ad_flow_end_to_end_on_chain() {
        let mut c = chain();
        let advertiser = AccountId(300);
        c.fund_from_treasury(advertiser, 10_000).unwrap();
        c.submit_call(
            advertiser,
            Call::CreateAdCampaign {
                keywords: vec!["dweb".into()],
                bid_per_click: 100,
                budget: 1_000,
            },
        );
        c.seal_block(SimInstant::ZERO);
        let ads = c.ad_market().match_keyword("dweb");
        assert_eq!(ads.len(), 1);
        let ad_id = ads[0].id;
        let creator = AccountId(301);
        let bee = AccountId(302);
        c.submit_call(
            AccountId(999),
            Call::RecordAdClick {
                ad: ad_id,
                page_creator: creator,
                serving_bee: bee,
            },
        );
        c.seal_block(SimInstant::ZERO);
        assert_eq!(c.balance(creator), 60);
        assert_eq!(c.balance(bee), 30);
        assert_eq!(c.ad_market().get(ad_id).unwrap().clicks, 1);
    }

    #[test]
    fn validators_rotate_round_robin() {
        let mut c = chain();
        let h0 = c.seal_block(SimInstant::ZERO);
        let h1 = c.seal_block(SimInstant::ZERO);
        let h2 = c.seal_block(SimInstant::ZERO);
        let h3 = c.seal_block(SimInstant::ZERO);
        assert_ne!(h0.sealer, h1.sealer);
        assert_ne!(h1.sealer, h2.sealer);
        assert_eq!(h0.sealer, h3.sealer);
    }

    #[test]
    fn chain_integrity_verifies_and_detects_linkage() {
        let mut c = chain();
        for i in 0..5u64 {
            c.submit_call(
                AccountId(100 + i),
                Call::PublishPage {
                    name: format!("page-{i}"),
                    cid: Cid::for_data(format!("body {i}").as_bytes()),
                    out_links: vec![],
                },
            );
            c.seal_block(SimInstant::ZERO);
        }
        assert!(c.verify_integrity().is_ok());
    }

    #[test]
    fn events_since_cursor() {
        let mut c = chain();
        c.submit_call(
            AccountId(1),
            Call::PublishPage {
                name: "a".into(),
                cid: Cid::for_data(b"a"),
                out_links: vec![],
            },
        );
        c.seal_block(SimInstant::ZERO);
        let cursor = c.events().len();
        c.submit_call(
            AccountId(2),
            Call::PublishPage {
                name: "b".into(),
                cid: Cid::for_data(b"b"),
                out_links: vec![],
            },
        );
        c.seal_block(SimInstant::ZERO);
        let new = c.events_since(cursor);
        assert!(new
            .iter()
            .any(|(_, e)| matches!(e, Event::PagePublished { name, .. } if name == "b")));
        assert!(!new
            .iter()
            .any(|(_, e)| matches!(e, Event::PagePublished { name, .. } if name == "a")));
        // A cursor past the end yields nothing.
        assert!(c.events_since(10_000).is_empty());
    }

    #[test]
    fn next_nonce_accounts_for_mempool() {
        let mut c = chain();
        assert_eq!(c.next_nonce(AccountId(4)), 0);
        c.submit_call(
            AccountId(4),
            Call::Transfer {
                to: AccountId(5),
                amount: 0,
            },
        );
        assert_eq!(c.next_nonce(AccountId(4)), 1);
        c.seal_block(SimInstant::ZERO);
        assert_eq!(c.next_nonce(AccountId(4)), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn honey_is_conserved_under_random_workloads(ops in proptest::collection::vec((0u8..6, 0u64..8, 0u64..500), 0..100)) {
            let mut c = chain();
            // Fund a handful of actor accounts.
            for i in 0..8u64 {
                c.fund_from_treasury(AccountId(100 + i), 100_000).unwrap();
            }
            let supply = c.accounts().total_supply();
            for (kind, actor, amount) in ops {
                let from = AccountId(100 + actor);
                let call = match kind {
                    0 => Call::Transfer { to: AccountId(100 + ((actor + 1) % 8)), amount },
                    1 => Call::PublishPage {
                        name: format!("page-{actor}"),
                        cid: Cid::for_data(&amount.to_be_bytes()),
                        out_links: vec![],
                    },
                    2 => Call::ClaimIndexReward { page_name: format!("page-{actor}"), page_version: amount % 3 },
                    3 => Call::DepositStake { amount },
                    4 => Call::SlashStake { offender: AccountId(100 + ((actor + 1) % 8)), amount },
                    _ => Call::CreateAdCampaign {
                        keywords: vec!["kw".into()],
                        bid_per_click: (amount % 50) + 1,
                        budget: amount + 1,
                    },
                };
                c.submit_call(from, call);
                if c.mempool_len() > 10 {
                    c.seal_block(SimInstant::ZERO);
                }
            }
            c.seal_block(SimInstant::ZERO);
            prop_assert_eq!(c.accounts().total_supply(), supply);
            prop_assert!(c.verify_integrity().is_ok());
        }
    }
}
